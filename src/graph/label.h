// Label interning shared by every graph in a join.
//
// Vertex and edge labels are interned strings. Labels whose name starts with
// '?' are *wildcards* (the paper's variable vertices): a wildcard substitutes
// against any label at zero cost, both in graph edit distance and in common
// label counting.

#ifndef SIMJ_GRAPH_LABEL_H_
#define SIMJ_GRAPH_LABEL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace simj::graph {

using LabelId = int32_t;
inline constexpr LabelId kInvalidLabel = -1;

// Bidirectional string <-> LabelId map. One dictionary must be shared by all
// graphs that participate in the same join. Not thread-safe for interning.
class LabelDictionary {
 public:
  LabelDictionary() = default;
  LabelDictionary(const LabelDictionary&) = delete;
  LabelDictionary& operator=(const LabelDictionary&) = delete;
  LabelDictionary(LabelDictionary&&) = default;
  LabelDictionary& operator=(LabelDictionary&&) = default;

  // Returns the id for `name`, interning it on first use.
  LabelId Intern(std::string_view name);

  // Returns the id for `name` or kInvalidLabel if never interned.
  LabelId Find(std::string_view name) const;

  const std::string& Name(LabelId id) const {
    SIMJ_CHECK(id >= 0 && id < static_cast<LabelId>(names_.size()));
    return names_[id];
  }

  // True when the label is a variable/wildcard ("?x", "?person", ...).
  bool IsWildcard(LabelId id) const {
    SIMJ_CHECK(id >= 0 && id < static_cast<LabelId>(is_wildcard_.size()));
    return is_wildcard_[id];
  }

  // True when `a` can substitute for `b` at zero cost: equal ids or either
  // side is a wildcard.
  bool Matches(LabelId a, LabelId b) const {
    return a == b || IsWildcard(a) || IsWildcard(b);
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, LabelId> index_;
  std::vector<std::string> names_;
  std::vector<bool> is_wildcard_;
};

// Multiset of labels, used for the label-multiset and CSS bounds.
using LabelCounts = std::unordered_map<LabelId, int>;

// Size of a maximum matching between two label multisets where a pair
// matches iff the labels are equal or at least one side is a wildcard.
// This generalizes |multiset intersection| to wildcard labels and is what
// the paper's lambda_V / lambda_E quantities become in our setting.
int MatchableLabelCount(const LabelCounts& a, const LabelCounts& b,
                        const LabelDictionary& dict);

}  // namespace simj::graph

#endif  // SIMJ_GRAPH_LABEL_H_
