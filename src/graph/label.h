// Label interning shared by every graph in a join.
//
// Vertex and edge labels are interned strings. Labels whose name starts with
// '?' are *wildcards* (the paper's variable vertices): a wildcard substitutes
// against any label at zero cost, both in graph edit distance and in common
// label counting.

#ifndef SIMJ_GRAPH_LABEL_H_
#define SIMJ_GRAPH_LABEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace simj::graph {

using LabelId = int32_t;
inline constexpr LabelId kInvalidLabel = -1;

// Bidirectional string <-> LabelId map. One dictionary must be shared by all
// graphs that participate in the same join. Interning is NOT thread-safe;
// the parallel join freezes the dictionary before sharding work so workers
// can only read it (lookups on a frozen dictionary are safe from any
// thread). Interning a label that is already present stays legal after the
// freeze; inserting a new one trips a SIMJ_CHECK.
//
// Concurrency contract (DESIGN.md §11): this class is intentionally
// lock-free — it uses a freeze protocol instead of a simj::Mutex. The
// release-store in Freeze() pairs with the acquire-load in frozen(): every
// intern happens-before the freeze, and the freeze happens-before any
// cross-thread lookup (the joining thread calls Freeze() before fanning
// out, and thread creation itself provides the needed synchronization for
// workers that never call frozen()). There is no guarded state for the
// thread-safety analysis to check here; the invariant is temporal
// (single-writer phase, then read-only phase), which the SIMJ_CHECK in
// Intern enforces dynamically.
class LabelDictionary {
 public:
  LabelDictionary() = default;
  LabelDictionary(const LabelDictionary&) = delete;
  LabelDictionary& operator=(const LabelDictionary&) = delete;
  LabelDictionary(LabelDictionary&& other) noexcept { *this = std::move(other); }
  LabelDictionary& operator=(LabelDictionary&& other) noexcept {
    if (this != &other) {
      index_ = std::move(other.index_);
      names_ = std::move(other.names_);
      is_wildcard_ = std::move(other.is_wildcard_);
      frozen_.store(other.frozen_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }
    return *this;
  }

  // Returns the id for `name`, interning it on first use.
  LabelId Intern(std::string_view name);

  // Forbids interning new labels from here on, making the dictionary safe
  // for concurrent reads. Idempotent; `const` because read paths (e.g. the
  // parallel join, which takes a const reference) must be able to assert
  // the read-only regime before fanning out.
  void Freeze() const { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  // Returns the id for `name` or kInvalidLabel if never interned.
  LabelId Find(std::string_view name) const;

  const std::string& Name(LabelId id) const {
    SIMJ_CHECK(id >= 0 && id < static_cast<LabelId>(names_.size()));
    return names_[id];
  }

  // True when the label is a variable/wildcard ("?x", "?person", ...).
  bool IsWildcard(LabelId id) const {
    SIMJ_CHECK(id >= 0 && id < static_cast<LabelId>(is_wildcard_.size()));
    return is_wildcard_[id];
  }

  // True when `a` can substitute for `b` at zero cost: equal ids or either
  // side is a wildcard.
  bool Matches(LabelId a, LabelId b) const {
    return a == b || IsWildcard(a) || IsWildcard(b);
  }

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, LabelId> index_;
  std::vector<std::string> names_;
  std::vector<bool> is_wildcard_;
  mutable std::atomic<bool> frozen_{false};
};

// Multiset of labels, used for the label-multiset and CSS bounds.
using LabelCounts = std::unordered_map<LabelId, int>;

// Size of a maximum matching between two label multisets where a pair
// matches iff the labels are equal or at least one side is a wildcard.
// This generalizes |multiset intersection| to wildcard labels and is what
// the paper's lambda_V / lambda_E quantities become in our setting.
[[nodiscard]] int MatchableLabelCount(const LabelCounts& a, const LabelCounts& b,
                        const LabelDictionary& dict);

}  // namespace simj::graph

#endif  // SIMJ_GRAPH_LABEL_H_
