#include "templates/qa.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>

#include "nlp/dependency.h"
#include "nlp/semantic_graph.h"

namespace simj::tmpl {

namespace {

struct Candidate {
  int index = -1;
  nlp::TokenAlignment alignment;
  int ted = std::numeric_limits<int>::max();
  int support = 0;

  // Smaller is better: tree distance first, then alignment cost, then
  // larger coverage, then stronger workload support (templates regenerated
  // by many matched pairs are more trustworthy).
  bool BetterThan(const Candidate& other) const {
    if (ted != other.ted) return ted < other.ted;
    if (alignment.cost != other.alignment.cost) {
      return alignment.cost < other.alignment.cost;
    }
    if (alignment.matching_proportion != other.alignment.matching_proportion) {
      return alignment.matching_proportion >
             other.alignment.matching_proportion;
    }
    return support > other.support;
  }
};

}  // namespace

StatusOr<QaAnswer> TemplateQa::Answer(const std::string& question,
                                      const QaOptions& options) const {
  std::vector<std::string> tokens = nlp::NormalizeQuestion(question);
  if (tokens.empty()) return InvalidArgumentError("empty question");

  // Dependency tree of the incoming question, when it parses.
  std::optional<nlp::DepTree> question_tree;
  StatusOr<nlp::ParsedQuestion> parsed = nlp::ParseQuestion(question, *lexicon_);
  if (parsed.ok()) question_tree = nlp::BuildQuestionTree(*parsed);

  // Slots may only capture phrases the lexicon can link.
  std::function<bool(const std::string&)> slot_validator =
      [this](const std::string& span) {
        return lexicon_->FindEntity(span) != nullptr ||
               lexicon_->FindClass(span) != nullptr;
      };

  std::optional<Candidate> best;
  for (int i = 0; i < templates_->size(); ++i) {
    const Template& t = templates_->templates()[i];
    std::optional<nlp::TokenAlignment> alignment = nlp::AlignTokens(
        t.nl_tokens, t.num_slots(), tokens, &slot_validator);
    if (!alignment.has_value()) continue;
    if (alignment->matching_proportion <
        options.min_matching_proportion - 1e-9) {
      continue;
    }
    Candidate candidate;
    candidate.index = i;
    candidate.alignment = *std::move(alignment);
    candidate.support = t.support_count;
    if (question_tree.has_value()) {
      candidate.ted = nlp::TreeEditDistance(*question_tree, t.tree);
    }
    if (!best.has_value() || candidate.BetterThan(*best)) {
      best = std::move(candidate);
    }
  }
  if (!best.has_value()) {
    return NotFoundError("no template matches the question");
  }

  const Template& chosen = templates_->templates()[best->index];

  // Resolve each slot phrase to a term.
  std::vector<rdf::TermId> slot_terms(chosen.num_slots(),
                                      graph::kInvalidLabel);
  for (int k = 0; k < chosen.num_slots(); ++k) {
    const std::string& phrase = best->alignment.slot_phrases[k];
    const Slot& slot = chosen.slots[k];
    if (slot.kind == SlotKind::kClass) {
      const nlp::ClassLink* link = lexicon_->FindClass(phrase);
      if (link == nullptr) {
        return NotFoundError("no class for slot phrase '" + phrase + "'");
      }
      slot_terms[k] = link->class_term;
      continue;
    }
    const std::vector<nlp::EntityLink>* links = lexicon_->FindEntity(phrase);
    if (links == nullptr || links->empty()) {
      return NotFoundError("no entity for slot phrase '" + phrase + "'");
    }
    // Prefer the most confident candidate of the expected class — this is
    // where the workload evidence baked into the template pays off.
    const nlp::EntityLink* pick = nullptr;
    for (const nlp::EntityLink& link : *links) {
      if (link.type_label == slot.expected_type) {
        pick = &link;
        break;
      }
    }
    if (pick == nullptr) pick = &links->front();
    slot_terms[k] = pick->entity;
  }

  // Instantiate the pattern.
  QaAnswer answer;
  answer.executed = chosen.pattern;
  for (rdf::TriplePattern& pattern : answer.executed.patterns) {
    for (rdf::TermId* field : {&pattern.subject, &pattern.predicate,
                               &pattern.object}) {
      const std::string& name = dict_->Name(*field);
      if (name.size() > 6 && name.rfind("__slot", 0) == 0) {
        int slot_index = std::atoi(name.substr(6).c_str());
        if (slot_index >= 0 && slot_index < chosen.num_slots()) {
          *field = slot_terms[slot_index];
        }
      }
    }
  }
  answer.template_index = best->index;
  answer.matching_proportion = best->alignment.matching_proportion;
  answer.tree_edit_distance =
      best->ted == std::numeric_limits<int>::max() ? -1 : best->ted;
  answer.rows = store_->Evaluate(answer.executed.ToBgp(), *dict_);
  return answer;
}

PrfScore ScoreAnswer(const std::vector<std::vector<rdf::TermId>>& gold,
                     const std::vector<std::vector<rdf::TermId>>& answer) {
  PrfScore score;
  if (gold.empty() && answer.empty()) {
    score.precision = score.recall = score.f1 = 1.0;
    return score;
  }
  if (gold.empty() || answer.empty()) return score;
  std::set<std::vector<rdf::TermId>> gold_set(gold.begin(), gold.end());
  std::set<std::vector<rdf::TermId>> answer_set(answer.begin(), answer.end());
  int correct = 0;
  for (const auto& row : answer_set) {
    if (gold_set.contains(row)) ++correct;
  }
  score.precision = static_cast<double>(correct) /
                    static_cast<double>(answer_set.size());
  score.recall =
      static_cast<double>(correct) / static_cast<double>(gold_set.size());
  if (score.precision + score.recall > 0) {
    score.f1 = 2 * score.precision * score.recall /
               (score.precision + score.recall);
  }
  return score;
}

}  // namespace simj::tmpl
