// Non-template Q/A baselines for the Table 4 comparison.
//
// DirectGraphQa follows the gAnswer [33] recipe: parse the question into a
// semantic query graph, link every phrase to its top candidate, build the
// SPARQL query directly and execute it. It keeps the wh-class constraint
// but is at the mercy of top-1 entity/predicate linking.
//
// JointGreedyQa follows the DEANNA [23] flavor of joint disambiguation in a
// deliberately simplified form: the same greedy top-1 choices, but without
// the class constraint on the answer variable (DEANNA's ILP optimizes
// phrase coherence, not answer typing). See DESIGN.md for the substitution
// rationale.

#ifndef SIMJ_TEMPLATES_BASELINES_H_
#define SIMJ_TEMPLATES_BASELINES_H_

#include <string>

#include "graph/label.h"
#include "nlp/lexicon.h"
#include "rdf/triple_store.h"
#include "templates/qa.h"
#include "util/status.h"

namespace simj::tmpl {

// gAnswer-style direct semantic-graph translation.
StatusOr<QaAnswer> DirectGraphQa(const std::string& question,
                                 const nlp::Lexicon& lexicon,
                                 const rdf::TripleStore& store,
                                 graph::LabelDictionary& dict);

// DEANNA-style greedy joint disambiguation (no answer-type constraint).
StatusOr<QaAnswer> JointGreedyQa(const std::string& question,
                                 const nlp::Lexicon& lexicon,
                                 const rdf::TripleStore& store,
                                 graph::LabelDictionary& dict);

}  // namespace simj::tmpl

#endif  // SIMJ_TEMPLATES_BASELINES_H_
