#include "templates/template.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "util/strings.h"

namespace simj::tmpl {

namespace {

// Replaces the token span matching `phrase` (already normalized) in
// `tokens` with `marker`. Returns false when the phrase does not occur.
bool ReplacePhrase(std::vector<std::string>& tokens,
                   const std::string& phrase, const std::string& marker) {
  std::vector<std::string> phrase_tokens = SplitWhitespace(phrase);
  if (phrase_tokens.empty()) return false;
  for (size_t i = 0; i + phrase_tokens.size() <= tokens.size(); ++i) {
    bool match = true;
    for (size_t k = 0; k < phrase_tokens.size(); ++k) {
      if (tokens[i + k] != phrase_tokens[k]) {
        match = false;
        break;
      }
    }
    if (match) {
      tokens.erase(tokens.begin() + static_cast<int>(i),
                   tokens.begin() + static_cast<int>(i + phrase_tokens.size()));
      tokens.insert(tokens.begin() + static_cast<int>(i), marker);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Template::NlPattern() const { return Join(nl_tokens, " "); }

std::string Template::CanonicalKey(const graph::LabelDictionary& dict) const {
  return NlPattern() + " | " + sparql::ToSparqlText(pattern, dict);
}

StatusOr<Template> GenerateTemplate(
    const sparql::ParsedQuery& query, const sparql::QueryGraph& query_graph,
    const nlp::ParsedQuestion& question,
    const nlp::UncertainQuestionGraph& question_graph,
    const std::vector<int>& mapping, graph::LabelDictionary& dict) {
  if (mapping.size() != static_cast<size_t>(query_graph.graph.num_vertices())) {
    return InvalidArgumentError("mapping size does not match query graph");
  }

  Template out;
  out.nl_tokens = question.tokens;
  out.pattern = query;
  out.source_question = Join(question.tokens, " ");

  // term -> slot index (a term slotted once is slotted everywhere).
  std::unordered_map<rdf::TermId, int> slot_of_term;
  std::vector<std::string> slot_phrases;

  for (int u = 0; u < query_graph.graph.num_vertices(); ++u) {
    int v = mapping[u];
    if (v < 0 || v >= question_graph.graph.num_vertices()) continue;
    rdf::TermId term = query_graph.vertex_terms[u];
    if (dict.IsWildcard(term)) continue;
    if (question_graph.vertex_is_variable[v]) continue;
    const std::string& phrase = question_graph.vertex_phrases[v];
    if (phrase.empty()) continue;
    if (slot_of_term.contains(term)) continue;

    int slot_index = out.num_slots();
    Slot slot;
    // A vertex whose only incident edges are `type` edges into it acts as a
    // class position; entity vertices carry candidate entity links.
    slot.kind = question_graph.vertex_entities[v].empty() ? SlotKind::kClass
                                                          : SlotKind::kEntity;
    slot.expected_type = query_graph.graph.vertex_label(u);

    std::string marker = "<slot" + std::to_string(slot_index) + ">";
    if (!ReplacePhrase(out.nl_tokens, phrase, marker)) {
      return NotFoundError("slot phrase '" + phrase +
                           "' not found in question tokens");
    }
    out.slots.push_back(slot);
    slot_of_term.emplace(term, slot_index);
    slot_phrases.push_back(phrase);
  }

  // Rewrite the SPARQL pattern with slot placeholder terms. The SPARQL-side
  // placeholder is "__slotK" (no angle brackets, so serialized patterns
  // re-parse cleanly); the NL-side marker stays "<slotK>".
  for (rdf::TriplePattern& pattern : out.pattern.patterns) {
    for (rdf::TermId* field : {&pattern.subject, &pattern.object}) {
      auto it = slot_of_term.find(*field);
      if (it != slot_of_term.end()) {
        // += form dodges the GCC 12 -Wrestrict false positive (PR105651).
        std::string slot_name = "__slot";
        slot_name += std::to_string(it->second);
        *field = dict.Intern(slot_name);
      }
    }
  }

  // Dependency tree of the slotted question.
  out.tree = nlp::SlottedTree(nlp::BuildQuestionTree(question), slot_phrases);
  return out;
}

bool TemplateStore::Add(Template t, const graph::LabelDictionary& dict) {
  std::string key = t.CanonicalKey(dict);
  auto it = index_by_key_.find(key);
  if (it != index_by_key_.end()) {
    Template& existing = templates_[it->second];
    ++existing.support_count;
    existing.support_simp = std::max(existing.support_simp, t.support_simp);
    return false;
  }
  index_by_key_.emplace(std::move(key),
                        static_cast<int>(templates_.size()));
  templates_.push_back(std::move(t));
  return true;
}

namespace {

// Dependency trees serialize as pre-order s-expressions with quoted
// labels: ("which" ("graduated from" ("<slot>")))
void AppendTree(const nlp::DepTree& tree, int node, std::string& out) {
  out += "(\"";
  for (char c : tree.nodes[node].label) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  for (int child : tree.nodes[node].children) {
    out += ' ';
    AppendTree(tree, child, out);
  }
  out += ')';
}

StatusOr<int> ParseTreeNode(std::string_view text, size_t& pos,
                            nlp::DepTree* tree) {
  auto skip_space = [&] {
    while (pos < text.size() && text[pos] == ' ') ++pos;
  };
  skip_space();
  if (pos >= text.size() || text[pos] != '(') {
    return InvalidArgumentError("expected '(' in tree");
  }
  ++pos;
  skip_space();
  if (pos >= text.size() || text[pos] != '"') {
    return InvalidArgumentError("expected quoted label in tree");
  }
  ++pos;
  std::string label;
  while (pos < text.size() && text[pos] != '"') {
    if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
    label += text[pos++];
  }
  if (pos >= text.size()) return InvalidArgumentError("unterminated label");
  ++pos;  // closing quote
  int node = tree->size();
  tree->nodes.push_back(nlp::DepTree::Node{std::move(label), {}});
  skip_space();
  while (pos < text.size() && text[pos] == '(') {
    StatusOr<int> child = ParseTreeNode(text, pos, tree);
    if (!child.ok()) return child.status();
    tree->nodes[node].children.push_back(*child);
    skip_space();
  }
  if (pos >= text.size() || text[pos] != ')') {
    return InvalidArgumentError("expected ')' in tree");
  }
  ++pos;
  return node;
}

}  // namespace

std::string SerializeTemplates(const TemplateStore& store,
                               const graph::LabelDictionary& dict) {
  std::string out;
  for (const Template& t : store.templates()) {
    out += "TEMPLATE\n";
    out += "NL " + t.NlPattern() + "\n";
    out += "SPARQL " + sparql::ToSparqlText(t.pattern, dict) + "\n";
    for (const Slot& slot : t.slots) {
      out += "SLOT ";
      out += slot.kind == SlotKind::kEntity ? "entity" : "class";
      out += ' ';
      out += slot.expected_type == graph::kInvalidLabel
                 ? "-"
                 : dict.Name(slot.expected_type);
      out += '\n';
    }
    if (t.tree.root >= 0) {
      out += "TREE ";
      AppendTree(t.tree, t.tree.root, out);
      out += '\n';
    }
    out += "SUPPORT " + std::to_string(t.support_count) + " " +
           std::to_string(t.support_simp) + " " +
           std::to_string(t.support_ged) + "\n";
    out += "SOURCE " + t.source_question + "\n";
    out += "END\n";
  }
  return out;
}

StatusOr<TemplateStore> ParseTemplates(std::string_view text,
                                       graph::LabelDictionary& dict) {
  TemplateStore store;
  Template current;
  bool in_template = false;

  size_t begin = 0;
  int line_number = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string line(StripWhitespace(text.substr(begin, end - begin)));
    begin = end + 1;
    ++line_number;
    if (line.empty()) continue;

    auto fail = [&](const std::string& what) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + what);
    };

    if (line == "TEMPLATE") {
      if (in_template) return fail("nested TEMPLATE");
      current = Template();
      in_template = true;
    } else if (line == "END") {
      if (!in_template) return fail("END without TEMPLATE");
      if (current.nl_tokens.empty() || current.pattern.patterns.empty()) {
        return fail("template missing NL or SPARQL");
      }
      store.Add(std::move(current), dict);
      in_template = false;
    } else if (StartsWith(line, "NL ")) {
      current.nl_tokens = SplitWhitespace(line.substr(3));
    } else if (StartsWith(line, "SPARQL ")) {
      StatusOr<sparql::ParsedQuery> query =
          sparql::ParseSparql(line.substr(7), dict);
      if (!query.ok()) return fail(query.status().message());
      current.pattern = *std::move(query);
    } else if (StartsWith(line, "SLOT ")) {
      std::vector<std::string> parts = SplitWhitespace(line.substr(5));
      if (parts.size() != 2) return fail("SLOT needs kind and type");
      Slot slot;
      slot.kind =
          parts[0] == "entity" ? SlotKind::kEntity : SlotKind::kClass;
      slot.expected_type =
          parts[1] == "-" ? graph::kInvalidLabel : dict.Intern(parts[1]);
      current.slots.push_back(slot);
    } else if (StartsWith(line, "TREE ")) {
      std::string_view expr = StripWhitespace(line).substr(5);
      size_t pos = 0;
      nlp::DepTree tree;
      StatusOr<int> root = ParseTreeNode(expr, pos, &tree);
      if (!root.ok()) return fail(root.status().message());
      tree.root = *root;
      current.tree = std::move(tree);
    } else if (StartsWith(line, "SUPPORT ")) {
      std::vector<std::string> parts = SplitWhitespace(line.substr(8));
      if (parts.size() != 3) return fail("SUPPORT needs three fields");
      current.support_count = std::atoi(parts[0].c_str());
      current.support_simp = std::atof(parts[1].c_str());
      current.support_ged = std::atoi(parts[2].c_str());
    } else if (StartsWith(line, "SOURCE ")) {
      current.source_question = line.substr(7);
    } else {
      return fail("unrecognized line '" + line + "'");
    }
  }
  if (in_template) return InvalidArgumentError("unterminated TEMPLATE");
  return store;
}

}  // namespace simj::tmpl
