#include "templates/baselines.h"

#include <string>
#include <vector>

#include "nlp/semantic_graph.h"

namespace simj::tmpl {

namespace {

// Shared translation: semantic query graph -> SPARQL with top-1 links.
StatusOr<QaAnswer> TranslateAndRun(const std::string& question,
                                   const nlp::Lexicon& lexicon,
                                   const rdf::TripleStore& store,
                                   graph::LabelDictionary& dict,
                                   bool use_class_constraints) {
  StatusOr<nlp::ParsedQuestion> parsed = nlp::ParseQuestion(question, lexicon);
  if (!parsed.ok()) return parsed.status();
  const nlp::SemanticQueryGraph& sq = parsed->graph;

  graph::LabelId type_predicate = dict.Intern("type");
  QaAnswer answer;

  // Assign a term to every argument.
  std::vector<rdf::TermId> term_of(sq.arguments.size(),
                                   graph::kInvalidLabel);
  int next_variable = 0;
  for (size_t i = 0; i < sq.arguments.size(); ++i) {
    const nlp::SemanticArgument& arg = sq.arguments[i];
    if (arg.is_variable) {
      std::string name = "?v" + std::to_string(next_variable++);
      term_of[i] = dict.Intern(name);
      if (use_class_constraints && !arg.phrase.empty()) {
        const nlp::ClassLink* link = lexicon.FindClass(arg.phrase);
        if (link != nullptr) {
          answer.executed.patterns.push_back(
              rdf::TriplePattern{term_of[i], type_predicate,
                                 link->class_term});
        }
      }
      continue;
    }
    const std::vector<nlp::EntityLink>* links = lexicon.FindEntity(arg.phrase);
    if (links == nullptr || links->empty()) {
      return NotFoundError("no entity link for '" + arg.phrase + "'");
    }
    term_of[i] = links->front().entity;  // top-1 linking
  }

  for (const nlp::SemanticQueryGraph::Relation& rel : sq.relations) {
    const std::vector<nlp::PredicateLink>* links =
        lexicon.FindRelation(rel.phrase);
    if (links == nullptr || links->empty()) {
      return NotFoundError("no predicate for '" + rel.phrase + "'");
    }
    answer.executed.patterns.push_back(rdf::TriplePattern{
        term_of[rel.arg1], links->front().predicate, term_of[rel.arg2]});
  }

  if (parsed->wh_argument < 0) {
    return InvalidArgumentError("no answer variable");
  }
  answer.executed.select_vars.push_back(term_of[parsed->wh_argument]);
  answer.rows = store.Evaluate(answer.executed.ToBgp(), dict);
  return answer;
}

}  // namespace

StatusOr<QaAnswer> DirectGraphQa(const std::string& question,
                                 const nlp::Lexicon& lexicon,
                                 const rdf::TripleStore& store,
                                 graph::LabelDictionary& dict) {
  return TranslateAndRun(question, lexicon, store, dict,
                         /*use_class_constraints=*/true);
}

StatusOr<QaAnswer> JointGreedyQa(const std::string& question,
                                 const nlp::Lexicon& lexicon,
                                 const rdf::TripleStore& store,
                                 graph::LabelDictionary& dict) {
  return TranslateAndRun(question, lexicon, store, dict,
                         /*use_class_constraints=*/false);
}

}  // namespace simj::tmpl
