// Template-based question answering (paper Section 2.2) and evaluation
// metrics.
//
// Pipeline for a new question:
//   1. template matching — dependency-tree edit distance between the
//      question and each template's slotted tree (token-alignment cost as
//      tie breaker / fallback when the question does not parse);
//   2. slot filling — token alignment captures the phrase behind each slot
//      and yields the matching proportion phi (partial matches allowed);
//   3. entity linking — slot phrases are resolved to entities (preferring
//      candidates of the slot's expected class) or class terms;
//   4. execution — the instantiated SPARQL runs on the triple store.

#ifndef SIMJ_TEMPLATES_QA_H_
#define SIMJ_TEMPLATES_QA_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "nlp/lexicon.h"
#include "rdf/triple_store.h"
#include "sparql/parser.h"
#include "templates/template.h"
#include "util/status.h"

namespace simj::tmpl {

struct QaAnswer {
  std::vector<std::vector<rdf::TermId>> rows;
  sparql::ParsedQuery executed;
  int template_index = -1;     // -1 for non-template baselines
  double matching_proportion = 1.0;
  int tree_edit_distance = -1; // -1 when tree matching was unavailable
};

struct QaOptions {
  // Minimum matching proportion phi for a template to be used (Table 5).
  double min_matching_proportion = 0.5;
};

class TemplateQa {
 public:
  TemplateQa(const TemplateStore* templates, const nlp::Lexicon* lexicon,
             const rdf::TripleStore* store, graph::LabelDictionary* dict)
      : templates_(templates), lexicon_(lexicon), store_(store), dict_(dict) {}

  // Answers `question` with the best matching template; fails when no
  // template aligns above the phi threshold or slot linking fails.
  StatusOr<QaAnswer> Answer(const std::string& question,
                            const QaOptions& options = QaOptions()) const;

 private:
  const TemplateStore* templates_;
  const nlp::Lexicon* lexicon_;
  const rdf::TripleStore* store_;
  graph::LabelDictionary* dict_;
};

// Per-question precision/recall/F1 against gold rows; both sides are sets
// of rows. Empty-vs-empty counts as a perfect match (the QALD convention).
struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
PrfScore ScoreAnswer(const std::vector<std::vector<rdf::TermId>>& gold,
                     const std::vector<std::vector<rdf::TermId>>& answer);

}  // namespace simj::tmpl

#endif  // SIMJ_TEMPLATES_QA_H_
