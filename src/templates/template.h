// Templates and their generation from similar graph pairs (paper
// Section 2.1, Step 3).
//
// A template pairs a natural-language pattern (question tokens with
// "<slotK>" markers) with a SPARQL pattern (a ParsedQuery whose slotted
// terms are "<slotK>") plus the slot mapping between them. It is built from
// a SimJ result pair: the GED vertex mapping aligns concrete
// entities/classes on the SPARQL side with phrases on the question side;
// each aligned concrete pair becomes a slot.

#ifndef SIMJ_TEMPLATES_TEMPLATE_H_
#define SIMJ_TEMPLATES_TEMPLATE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/label.h"
#include "nlp/dependency.h"
#include "nlp/semantic_graph.h"
#include "nlp/uncertain_builder.h"
#include "sparql/parser.h"
#include "util/status.h"

namespace simj::tmpl {

enum class SlotKind {
  kEntity,  // filled by entity linking
  kClass,   // filled by class phrase lookup (e.g. the wh-class)
};

struct Slot {
  SlotKind kind = SlotKind::kEntity;
  // Class label the workload pair had at this position; used as a
  // disambiguation hint when filling the slot.
  graph::LabelId expected_type = graph::kInvalidLabel;
};

struct Template {
  // Natural-language pattern, normalized tokens with "<slotK>" markers.
  std::vector<std::string> nl_tokens;
  // SPARQL pattern with "<slotK>" placeholder terms.
  sparql::ParsedQuery pattern;
  std::vector<Slot> slots;
  // Dependency tree of the NL pattern (slot nodes carry nlp::kSlotMarker).
  nlp::DepTree tree;

  // Provenance: the pair that generated this template, plus how many
  // distinct matched pairs regenerated it (its workload support).
  double support_simp = 0.0;
  int support_ged = -1;
  int support_count = 1;
  std::string source_question;

  int num_slots() const { return static_cast<int>(slots.size()); }
  std::string NlPattern() const;
  std::string CanonicalKey(const graph::LabelDictionary& dict) const;
};

// Builds a template from a matched pair:
//   `query`/`query_graph`  — the SPARQL side (D),
//   `question`/`question_graph` — the NLQ side (U),
//   `mapping`              — q-vertex -> g-vertex from the GED computation.
// Every mapped pair of concrete vertices (non-variable on both sides)
// becomes a slot. Fails when a slotted phrase cannot be located in the
// question tokens.
StatusOr<Template> GenerateTemplate(
    const sparql::ParsedQuery& query, const sparql::QueryGraph& query_graph,
    const nlp::ParsedQuestion& question,
    const nlp::UncertainQuestionGraph& question_graph,
    const std::vector<int>& mapping, graph::LabelDictionary& dict);

// Deduplicating template collection. Re-adding an existing template bumps
// its support count (and keeps the strongest SimP evidence).
class TemplateStore {
 public:
  // Returns true when the template was new.
  bool Add(Template t, const graph::LabelDictionary& dict);

  const std::vector<Template>& templates() const { return templates_; }
  int size() const { return static_cast<int>(templates_.size()); }

 private:
  std::vector<Template> templates_;
  std::unordered_map<std::string, int> index_by_key_;
};

// Text persistence for template stores: a readable line-oriented format
// that round-trips through ParseTemplates (the dependency tree included),
// so template libraries can be shipped separately from the workloads that
// produced them.
std::string SerializeTemplates(const TemplateStore& store,
                               const graph::LabelDictionary& dict);
StatusOr<TemplateStore> ParseTemplates(std::string_view text,
                                       graph::LabelDictionary& dict);

}  // namespace simj::tmpl

#endif  // SIMJ_TEMPLATES_TEMPLATE_H_
