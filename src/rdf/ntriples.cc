#include "rdf/ntriples.h"

#include <cctype>
#include <vector>

#include "util/strings.h"

namespace simj::rdf {

namespace {

// Reads one term starting at text[pos]; advances pos past it.
StatusOr<std::string> ReadTerm(std::string_view line, size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos >= line.size()) return InvalidArgumentError("missing term");
  char c = line[pos];
  if (c == '<') {
    size_t end = line.find('>', pos);
    if (end == std::string_view::npos) {
      return InvalidArgumentError("unterminated IRI");
    }
    std::string term(line.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    if (term.empty()) return InvalidArgumentError("empty IRI");
    return term;
  }
  if (c == '"') {
    size_t end = line.find('"', pos + 1);
    if (end == std::string_view::npos) {
      return InvalidArgumentError("unterminated literal");
    }
    std::string term(line.substr(pos + 1, end - pos - 1));
    pos = end + 1;
    return term;
  }
  size_t begin = pos;
  while (pos < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  std::string term(line.substr(begin, pos - begin));
  // A lone '.' terminator is not a term.
  if (term == ".") return InvalidArgumentError("missing term before '.'");
  return term;
}

bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':' || c == '.' || c == '-' || c == '?')) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<int64_t> ParseNTriples(std::string_view text,
                                graph::LabelDictionary& dict,
                                TripleStore* store) {
  int64_t added = 0;
  int line_number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = StripWhitespace(text.substr(begin, end - begin));
    begin = end + 1;
    ++line_number;
    if (line.empty() || line.front() == '#') continue;

    size_t pos = 0;
    StatusOr<std::string> subject = ReadTerm(line, pos);
    if (!subject.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + subject.status().message());
    }
    StatusOr<std::string> predicate = ReadTerm(line, pos);
    if (!predicate.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + predicate.status().message());
    }
    StatusOr<std::string> object = ReadTerm(line, pos);
    if (!object.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + object.status().message());
    }
    std::string_view rest = StripWhitespace(line.substr(pos));
    if (!rest.empty() && rest != ".") {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": trailing content '" + std::string(rest) +
                                  "'");
    }
    store->Add(dict.Intern(*subject), dict.Intern(*predicate),
               dict.Intern(*object));
    ++added;
  }
  return added;
}

std::string ToNTriples(const TripleStore& store,
                       const graph::LabelDictionary& dict) {
  std::string out;
  auto append_term = [&](TermId term) {
    const std::string& name = dict.Name(term);
    if (NeedsQuoting(name)) {
      out += '"';
      out += name;
      out += '"';
    } else {
      out += '<';
      out += name;
      out += '>';
    }
  };
  for (const Triple& triple : store.triples()) {
    append_term(triple.subject);
    out += ' ';
    append_term(triple.predicate);
    out += ' ';
    append_term(triple.object);
    out += " .\n";
  }
  return out;
}

}  // namespace simj::rdf
