#include "rdf/triple_store.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace simj::rdf {

namespace {

const std::vector<int>& EmptyIndex() {
  // simj-lint: allow(new) leaky singleton
  static const std::vector<int>* kEmpty = new std::vector<int>();
  return *kEmpty;
}

int64_t PairKey(TermId a, TermId b) {
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}

const std::vector<int>& Lookup(
    const std::unordered_map<TermId, std::vector<int>>& index, TermId key) {
  auto it = index.find(key);
  return it == index.end() ? EmptyIndex() : it->second;
}

const std::vector<int>& LookupPair(
    const std::unordered_map<int64_t, std::vector<int>>& index, TermId a,
    TermId b) {
  auto it = index.find(PairKey(a, b));
  return it == index.end() ? EmptyIndex() : it->second;
}

}  // namespace

void TripleStore::Add(TermId subject, TermId predicate, TermId object) {
  int id = static_cast<int>(triples_.size());
  triples_.push_back(Triple{subject, predicate, object});
  by_subject_[subject].push_back(id);
  by_predicate_[predicate].push_back(id);
  by_object_[object].push_back(id);
  by_sp_[PairKey(subject, predicate)].push_back(id);
  by_po_[PairKey(predicate, object)].push_back(id);
}

bool TripleStore::Contains(TermId subject, TermId predicate,
                           TermId object) const {
  for (int id : BySubjectPredicate(subject, predicate)) {
    if (triples_[id].object == object) return true;
  }
  return false;
}

const std::vector<int>& TripleStore::BySubject(TermId subject) const {
  return Lookup(by_subject_, subject);
}
const std::vector<int>& TripleStore::ByPredicate(TermId predicate) const {
  return Lookup(by_predicate_, predicate);
}
const std::vector<int>& TripleStore::ByObject(TermId object) const {
  return Lookup(by_object_, object);
}
const std::vector<int>& TripleStore::BySubjectPredicate(TermId s,
                                                        TermId p) const {
  return LookupPair(by_sp_, s, p);
}
const std::vector<int>& TripleStore::ByPredicateObject(TermId p,
                                                       TermId o) const {
  return LookupPair(by_po_, p, o);
}

namespace {

// Backtracking BGP evaluation.
class BgpEvaluator {
 public:
  BgpEvaluator(const TripleStore& store, const BgpQuery& query,
               const graph::LabelDictionary& dict, int64_t max_rows)
      : store_(store), query_(query), dict_(dict), max_rows_(max_rows) {}

  std::vector<std::vector<TermId>> Run() {
    done_.assign(query_.patterns.size(), false);
    Recurse(0);
    return std::vector<std::vector<TermId>>(rows_.begin(), rows_.end());
  }

 private:
  bool IsVar(TermId term) const { return dict_.IsWildcard(term); }

  TermId Resolve(TermId term) const {
    if (!IsVar(term)) return term;
    auto it = binding_.find(term);
    return it == binding_.end() ? graph::kInvalidLabel : it->second;
  }

  // Estimated number of candidate triples for a pattern under the current
  // binding; used to pick the most selective pattern next.
  int64_t Selectivity(const TriplePattern& pattern) const {
    TermId s = Resolve(pattern.subject);
    TermId p = Resolve(pattern.predicate);
    TermId o = Resolve(pattern.object);
    if (s != graph::kInvalidLabel && p != graph::kInvalidLabel) {
      return static_cast<int64_t>(store_.BySubjectPredicate(s, p).size());
    }
    if (p != graph::kInvalidLabel && o != graph::kInvalidLabel) {
      return static_cast<int64_t>(store_.ByPredicateObject(p, o).size());
    }
    if (s != graph::kInvalidLabel) {
      return static_cast<int64_t>(store_.BySubject(s).size());
    }
    if (o != graph::kInvalidLabel) {
      return static_cast<int64_t>(store_.ByObject(o).size());
    }
    if (p != graph::kInvalidLabel) {
      return static_cast<int64_t>(store_.ByPredicate(p).size());
    }
    return store_.size();
  }

  const std::vector<int>& Candidates(const TriplePattern& pattern) const {
    TermId s = Resolve(pattern.subject);
    TermId p = Resolve(pattern.predicate);
    TermId o = Resolve(pattern.object);
    if (s != graph::kInvalidLabel && p != graph::kInvalidLabel) {
      return store_.BySubjectPredicate(s, p);
    }
    if (p != graph::kInvalidLabel && o != graph::kInvalidLabel) {
      return store_.ByPredicateObject(p, o);
    }
    if (s != graph::kInvalidLabel) return store_.BySubject(s);
    if (o != graph::kInvalidLabel) return store_.ByObject(o);
    if (p != graph::kInvalidLabel) return store_.ByPredicate(p);
    all_ids_.resize(store_.size());
    for (int i = 0; i < store_.size(); ++i) all_ids_[i] = i;
    return all_ids_;
  }

  // Tries to unify `term` of a pattern against a concrete `value`,
  // recording new bindings in `added`.
  bool Unify(TermId term, TermId value, std::vector<TermId>* added) {
    if (!IsVar(term)) return term == value;
    auto it = binding_.find(term);
    if (it != binding_.end()) return it->second == value;
    binding_[term] = value;
    added->push_back(term);
    return true;
  }

  void Recurse(size_t bound_count) {
    if (static_cast<int64_t>(rows_.size()) >= max_rows_) return;
    if (bound_count == query_.patterns.size()) {
      std::vector<TermId> row;
      row.reserve(query_.select_vars.size());
      for (TermId var : query_.select_vars) {
        row.push_back(Resolve(var));
      }
      rows_.insert(std::move(row));
      return;
    }
    // Pick the most selective unprocessed pattern.
    int best = -1;
    int64_t best_count = 0;
    for (size_t i = 0; i < query_.patterns.size(); ++i) {
      if (done_[i]) continue;
      int64_t count = Selectivity(query_.patterns[i]);
      if (best == -1 || count < best_count) {
        best = static_cast<int>(i);
        best_count = count;
      }
    }
    SIMJ_CHECK_GE(best, 0);
    done_[best] = true;
    const TriplePattern& pattern = query_.patterns[best];
    // Candidates may be invalidated by recursive calls reusing all_ids_;
    // copy the ids.
    std::vector<int> candidates = Candidates(pattern);
    for (int id : candidates) {
      const Triple& t = store_.triples()[id];
      std::vector<TermId> added;
      if (Unify(pattern.subject, t.subject, &added) &&
          Unify(pattern.predicate, t.predicate, &added) &&
          Unify(pattern.object, t.object, &added)) {
        Recurse(bound_count + 1);
      }
      for (TermId var : added) binding_.erase(var);
      if (static_cast<int64_t>(rows_.size()) >= max_rows_) break;
    }
    done_[best] = false;
  }

  const TripleStore& store_;
  const BgpQuery& query_;
  const graph::LabelDictionary& dict_;
  int64_t max_rows_;
  std::unordered_map<TermId, TermId> binding_;
  std::vector<bool> done_;
  std::set<std::vector<TermId>> rows_;
  mutable std::vector<int> all_ids_;
};

}  // namespace

std::vector<std::vector<TermId>> TripleStore::Evaluate(
    const BgpQuery& query, const graph::LabelDictionary& dict,
    int64_t max_rows) const {
  if (query.patterns.empty()) return {};
  BgpEvaluator evaluator(*this, query, dict, max_rows);
  return evaluator.Run();
}

}  // namespace simj::rdf
