// In-memory RDF triple store with a basic-graph-pattern evaluator.
//
// Terms (IRIs, literals, variables) are interned in the project-wide
// graph::LabelDictionary so SPARQL queries, knowledge-base entities and
// graph labels all share one symbol table. Variables are terms whose name
// starts with '?'.
//
// The store answers OPT-free basic graph patterns — exactly the SPARQL
// fragment the paper's templates produce — via backtracking joins ordered
// by selectivity. This is the substrate used to execute generated SPARQL
// for the Q/A evaluation (Tables 4 and 5).

#ifndef SIMJ_RDF_TRIPLE_STORE_H_
#define SIMJ_RDF_TRIPLE_STORE_H_

#include <unordered_map>
#include <vector>

#include "graph/label.h"

namespace simj::rdf {

using TermId = graph::LabelId;

struct Triple {
  TermId subject = graph::kInvalidLabel;
  TermId predicate = graph::kInvalidLabel;
  TermId object = graph::kInvalidLabel;

  friend bool operator==(const Triple&, const Triple&) = default;
};

// A triple pattern: any position may hold a variable term.
struct TriplePattern {
  TermId subject = graph::kInvalidLabel;
  TermId predicate = graph::kInvalidLabel;
  TermId object = graph::kInvalidLabel;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

struct BgpQuery {
  std::vector<TermId> select_vars;
  std::vector<TriplePattern> patterns;
};

class TripleStore {
 public:
  TripleStore() = default;

  // Adds a triple (duplicates are kept; Contains de-duplicates logically).
  void Add(TermId subject, TermId predicate, TermId object);

  int64_t size() const { return static_cast<int64_t>(triples_.size()); }
  const std::vector<Triple>& triples() const { return triples_; }

  bool Contains(TermId subject, TermId predicate, TermId object) const;

  // Triple indexes (ids into triples()) by field value; empty vector when
  // the value never occurs.
  const std::vector<int>& BySubject(TermId subject) const;
  const std::vector<int>& ByPredicate(TermId predicate) const;
  const std::vector<int>& ByObject(TermId object) const;
  const std::vector<int>& BySubjectPredicate(TermId s, TermId p) const;
  const std::vector<int>& ByPredicateObject(TermId p, TermId o) const;

  // Evaluates a basic graph pattern. Returns distinct rows of bindings for
  // the query's select variables, capped at `max_rows`. Variables are
  // detected via dict.IsWildcard.
  std::vector<std::vector<TermId>> Evaluate(
      const BgpQuery& query, const graph::LabelDictionary& dict,
      int64_t max_rows = 100000) const;

 private:
  std::vector<Triple> triples_;
  std::unordered_map<TermId, std::vector<int>> by_subject_;
  std::unordered_map<TermId, std::vector<int>> by_predicate_;
  std::unordered_map<TermId, std::vector<int>> by_object_;
  std::unordered_map<int64_t, std::vector<int>> by_sp_;
  std::unordered_map<int64_t, std::vector<int>> by_po_;
};

}  // namespace simj::rdf

#endif  // SIMJ_RDF_TRIPLE_STORE_H_
