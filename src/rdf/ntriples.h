// N-Triples-style serialization for TripleStore: load a knowledge graph
// from text and write one back, so stores can be persisted and exchanged.
//
// Accepted line grammar (a pragmatic subset of W3C N-Triples):
//   <subject> <predicate> <object> .
//   subject predicate object .          (bare names allowed)
//   "literal object"                    (quoted literals keep spaces)
//   # comment lines and blank lines are skipped
// Terms are interned into the shared LabelDictionary.

#ifndef SIMJ_RDF_NTRIPLES_H_
#define SIMJ_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "graph/label.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace simj::rdf {

// Parses N-Triples `text` into `store`. Returns the number of triples
// added, or an error naming the first offending line.
StatusOr<int64_t> ParseNTriples(std::string_view text,
                                graph::LabelDictionary& dict,
                                TripleStore* store);

// Serializes the store; terms containing characters outside [A-Za-z0-9_:.-]
// are written as quoted literals, everything else in angle brackets.
std::string ToNTriples(const TripleStore& store,
                       const graph::LabelDictionary& dict);

}  // namespace simj::rdf

#endif  // SIMJ_RDF_NTRIPLES_H_
