#include "core/topk.h"

#include <algorithm>

#include "core/groups.h"
#include "core/similarity.h"
#include "ged/lower_bounds.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::UncertainGraph;

bool BetterMatch(const MatchedPair& a, const MatchedPair& b) {
  if (a.similarity_probability != b.similarity_probability) {
    return a.similarity_probability > b.similarity_probability;
  }
  return a.q_index < b.q_index;
}

}  // namespace

TopKResult TopKJoin(const std::vector<LabeledGraph>& d,
                    const std::vector<UncertainGraph>& u,
                    const TopKParams& params,
                    const graph::LabelDictionary& dict) {
  TopKResult result;
  result.matches.resize(u.size());

  for (int gi = 0; gi < static_cast<int>(u.size()); ++gi) {
    const UncertainGraph& g = u[gi];
    std::vector<MatchedPair>& heap = result.matches[gi];

    // Running k-th best SimP; candidates whose upper bound cannot beat it
    // are skipped. Starts at 0: everything with SimP > 0 is admissible.
    double threshold = 0.0;

    for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
      ++result.stats.total_pairs;
      const LabeledGraph& q = d[qi];
      if (ged::CssLowerBoundUncertain(q, g, dict) > params.tau) {
        ++result.stats.pruned_structural;
        continue;
      }
      if (threshold > 0.0) {
        GroupingOptions options;
        options.group_count = params.group_count;
        GroupingResult grouping =
            PartitionPossibleWorlds(q, g, params.tau, dict, options);
        if (grouping.simp_upper_bound <= threshold + kSimPEpsilon) {
          ++result.stats.pruned_by_threshold;
          continue;
        }
      }
      ++result.stats.evaluated;
      SimPResult simp = ComputeSimP(q, g, params.tau, dict,
                                    params.ged_options, &result.stats.verify);
      if (simp.probability <= kSimPEpsilon) continue;

      MatchedPair pair;
      pair.q_index = qi;
      pair.g_index = gi;
      pair.similarity_probability = simp.probability;
      pair.mapping = simp.best_mapping;
      pair.best_world_ged = simp.best_world_ged;
      heap.push_back(std::move(pair));
      std::sort(heap.begin(), heap.end(), BetterMatch);
      if (static_cast<int>(heap.size()) > params.k) heap.pop_back();
      if (static_cast<int>(heap.size()) == params.k) {
        threshold = heap.back().similarity_probability;
      }
    }
  }
  return result;
}

}  // namespace simj::core
