#include "core/similarity.h"

#include <algorithm>

#include "ged/lower_bounds.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::LabelDictionary;
using graph::PossibleWorldIterator;
using graph::UncertainGraph;

// Evaluates one possible world: bound check, then bounded A*. Updates the
// accumulator and best-world tracking in `result`.
void EvaluateWorld(const LabeledGraph& q, const UncertainGraph& g,
                   const std::vector<int>& choice, double world_prob, int tau,
                   const LabelDictionary& dict, const ged::GedOptions& options,
                   VerifyStats* stats, SimPResult* result) {
  static metrics::Counter& worlds_total =
      metrics::Registry::Global().GetCounter("simj_verify_worlds_total");
  static metrics::Counter& worlds_pruned =
      metrics::Registry::Global().GetCounter(
          "simj_verify_worlds_pruned_total");
  static metrics::Histogram& ged_seconds =
      metrics::Registry::Global().GetHistogram("simj_verify_ged_seconds");
  ++stats->worlds_enumerated;
  worlds_total.Increment();
  LabeledGraph world = g.Materialize(choice);
  if (ged::CssLowerBound(q, world, dict) > tau) {
    ++stats->worlds_pruned_by_bound;
    worlds_pruned.Increment();
    return;
  }
  // Cheap accept: when the greedy upper bound already fits within tau and
  // this world cannot improve the best mapping, skip the exact search. The
  // exact A* still runs for would-be-best worlds so template generation
  // sees an optimal mapping.
  if (world_prob <= result->best_world_prob &&
      ged::GreedyGedUpperBound(q, world, dict) <= tau) {
    ++stats->worlds_accepted_by_upper_bound;
    result->probability += world_prob;
    return;
  }
  ++stats->ged_calls;
  bool aborted = false;
  std::optional<ged::GedResult> ged_result;
  {
    metrics::ScopedLatency latency(ged_seconds);
    trace::ScopedSpan span("ged_astar", "verify");
    ged_result = ged::BoundedGed(q, world, tau, dict, options, &aborted);
  }
  if (aborted) ++stats->ged_aborted;
  if (!ged_result.has_value()) return;
  result->probability += world_prob;
  if (world_prob > result->best_world_prob) {
    result->best_world_prob = world_prob;
    result->best_world_ged = ged_result->distance;
    result->best_mapping = ged_result->mapping;
  }
}

}  // namespace

SimPResult ComputeSimP(const LabeledGraph& q, const UncertainGraph& g,
                       int tau, const LabelDictionary& dict,
                       const ged::GedOptions& options, VerifyStats* stats) {
  VerifyStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  SimPResult result;
  for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
    EvaluateWorld(q, g, it.choice(), it.probability(), tau, dict, options,
                  stats, &result);
  }
  return result;
}

namespace {

// Worlds sorted by descending probability reach both early exits sooner
// (the most probable worlds decide most of the mass). Enumeration order
// never changes the decision, only how early it is reached. Groups beyond
// this many worlds are processed in odometer order to avoid materializing
// a huge list.
constexpr int64_t kMaxSortedWorlds = 4096;

struct OrderedWorld {
  std::vector<int> choice;
  double probability;
};

std::vector<OrderedWorld> SortedWorlds(const UncertainGraph& g) {
  std::vector<OrderedWorld> worlds;
  worlds.reserve(static_cast<size_t>(g.NumPossibleWorlds()));
  for (PossibleWorldIterator it(g); !it.Done(); it.Next()) {
    worlds.push_back(OrderedWorld{it.choice(), it.probability()});
  }
  std::sort(worlds.begin(), worlds.end(),
            [](const OrderedWorld& a, const OrderedWorld& b) {
              return a.probability > b.probability;
            });
  return worlds;
}

}  // namespace

SimPResult VerifySimP(const LabeledGraph& q,
                      const std::vector<UncertainGraph>& groups,
                      double total_mass, int tau, double alpha,
                      const LabelDictionary& dict,
                      const ged::GedOptions& options, VerifyStats* stats) {
  VerifyStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  SimPResult result;
  double remaining = total_mass;

  auto process = [&](const UncertainGraph& group,
                     const std::vector<int>& choice,
                     double world_prob) -> bool {
    EvaluateWorld(q, group, choice, world_prob, tau, dict, options, stats,
                  &result);
    remaining -= world_prob;
    if (result.probability >= alpha - kSimPEpsilon) {
      result.early_accept = true;
      return true;
    }
    if (result.probability + remaining < alpha - kSimPEpsilon) {
      result.early_reject = true;
      return true;
    }
    return false;
  };

  for (const UncertainGraph& group : groups) {
    if (group.NumPossibleWorlds() <= kMaxSortedWorlds) {
      for (const OrderedWorld& world : SortedWorlds(group)) {
        if (process(group, world.choice, world.probability)) return result;
      }
    } else {
      for (PossibleWorldIterator it(group); !it.Done(); it.Next()) {
        if (process(group, it.choice(), it.probability())) return result;
      }
    }
  }
  return result;
}

double UpperBoundSimPWithConstant(const LabeledGraph& q,
                                  const UncertainGraph& g, int tau,
                                  int structural_constant,
                                  const LabelDictionary& dict) {
  double mass = g.TotalMass();
  int need = structural_constant - tau;
  if (need <= 0) return mass;

  // E[Y * 1_group] = mass * sum_v (match_v / mass_v), with match_v the
  // probability mass of v's alternatives whose label matches some vertex
  // label of q (wildcard-aware).
  double expectation_ratio = 0.0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    double vertex_mass = 0.0;
    double match_mass = 0.0;
    for (const graph::LabelAlternative& alt : g.alternatives(v)) {
      vertex_mass += alt.prob;
      bool matches = false;
      for (int u = 0; u < q.num_vertices(); ++u) {
        if (dict.Matches(alt.label, q.vertex_label(u))) {
          matches = true;
          break;
        }
      }
      if (matches) match_mass += alt.prob;
    }
    SIMJ_CHECK_GT(vertex_mass, 0.0);
    expectation_ratio += match_mass / vertex_mass;
  }
  double markov = mass * expectation_ratio / need;
  return std::min(mass, markov);
}

double UpperBoundSimP(const LabeledGraph& q, const UncertainGraph& g,
                      int tau, const LabelDictionary& dict) {
  return UpperBoundSimPWithConstant(
      q, g, tau, ged::CssStructuralConstant(q, g, dict), dict);
}

namespace {

double TotalProbabilityBound(const LabeledGraph& q, const UncertainGraph& g,
                             int tau, int structural_constant,
                             const LabelDictionary& dict, int depth) {
  // Condition on the vertex with the most alternatives.
  int pivot = -1;
  size_t most = 1;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.alternatives(v).size() > most) {
      most = g.alternatives(v).size();
      pivot = v;
    }
  }
  if (depth <= 0 || pivot < 0) {
    if (structural_constant -
            ged::MaxCommonVertexLabels(q, g, dict) > tau) {
      return 0.0;
    }
    return UpperBoundSimPWithConstant(q, g, tau, structural_constant, dict);
  }
  double total = 0.0;
  for (int alt = 0; alt < static_cast<int>(g.alternatives(pivot).size());
       ++alt) {
    UncertainGraph restricted = g.RestrictVertex(pivot, {alt});
    total += TotalProbabilityBound(q, restricted, tau, structural_constant,
                                   dict, depth - 1);
  }
  return total;
}

}  // namespace

double UpperBoundSimPTotalProbability(const LabeledGraph& q,
                                      const UncertainGraph& g, int tau,
                                      const LabelDictionary& dict,
                                      int depth) {
  return TotalProbabilityBound(
      q, g, tau, ged::CssStructuralConstant(q, g, dict), dict, depth);
}

}  // namespace simj::core
