// Live join progress for the introspection endpoint and the stall watchdog.
//
// JoinProgress is a process-wide singleton sampled by readers (the statusz
// server thread, the stall-watchdog monitor thread, the --progress_every
// logger) while a join runs. It is deliberately cheap on the worker side:
//
//   * completed / per-stage pair counts are NOT new atomics — they are
//     computed as deltas of the existing sharded registry counters against
//     baselines captured at BeginJoin, so the join hot path pays nothing
//     for them;
//   * per-worker heartbeats (timestamp + current pair) are a handful of
//     relaxed stores per pair, and only when heartbeats were armed for the
//     join (stall watchdog on, or a statusz server requested them);
//   * the throughput window behind the ETA lives entirely on the reader
//     side — Snapshot() feeds it, workers never touch it.
//
// Everything here is observational: results, stats and explain output are
// byte-identical with the tracker armed or idle, at every thread count.

#ifndef SIMJ_CORE_PROGRESS_H_
#define SIMJ_CORE_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/sync.h"

namespace simj::core {

// Upper bound on tracked workers. Joins may run with more threads; extra
// workers simply share slot kMaxTrackedWorkers - 1 (heartbeats stay
// conservative: the slot always holds *a* live worker's beat).
inline constexpr int kMaxTrackedWorkers = 256;

// One stalled-worker observation from CheckStalls.
struct StallEvent {
  int worker = -1;
  int q_index = -1;
  int g_index = -1;
  double stalled_ms = 0.0;  // age of the worker's heartbeat when observed
};

// Reader-side view of the running (or last) join.
struct ProgressSnapshot {
  bool active = false;
  int64_t joins_started = 0;  // process-lifetime BeginJoin count
  int64_t total_pairs = 0;
  // Pairs that have entered evaluation (the registry counter increments at
  // EvaluatePair entry), so this can run ahead of fully-finished pairs by
  // at most `workers` in-flight pairs; it equals total_pairs when the join
  // ends.
  int64_t completed_pairs = 0;
  // Per-stage completion (deltas of the registry counters over this join).
  int64_t pruned_structural = 0;
  int64_t pruned_probabilistic = 0;
  int64_t candidates = 0;
  int64_t results = 0;
  int workers = 0;
  double elapsed_seconds = 0.0;
  // Throughput over the sliding sample window (whole-join average until the
  // window has two samples). 0 when nothing completed yet.
  double pairs_per_second = 0.0;
  // Remaining / pairs_per_second; -1 while unknown (no completed pairs).
  double eta_seconds = -1.0;

  struct WorkerHeartbeat {
    int worker = -1;
    double age_ms = 0.0;  // time since the worker started its current pair
    int q_index = -1;
    int g_index = -1;
  };
  // Only workers currently inside a pair; empty when heartbeats were not
  // armed (or every worker is between pairs).
  std::vector<WorkerHeartbeat> heartbeats;
};

class JoinProgress {
 public:
  static JoinProgress& Global();

  // Sticky request from the statusz wiring: arms heartbeats for every
  // subsequent join so /statusz can show per-worker liveness even when the
  // stall watchdog is off.
  void RequestHeartbeats(bool enabled) {
    heartbeats_requested_.store(enabled, std::memory_order_relaxed);
  }
  bool heartbeats_requested() const {
    return heartbeats_requested_.load(std::memory_order_relaxed);
  }

  // Marks the start of a join over `total_pairs` pairs on `workers`
  // workers. Captures registry-counter baselines so completed counts are
  // deltas, resets heartbeat slots, and clears the ETA window. `heartbeats`
  // arms the per-pair Heartbeat stores for this join.
  void BeginJoin(int64_t total_pairs, int workers, bool heartbeats);
  void EndJoin();
  bool active() const { return active_.load(std::memory_order_relaxed); }
  bool heartbeats_armed() const {
    return heartbeats_armed_.load(std::memory_order_relaxed);
  }

  // Worker-side, called once per pair before evaluation: relaxed stores of
  // the pair identity and a steady-clock timestamp. Callers gate on
  // heartbeats_armed() so the idle path never reaches here.
  void Heartbeat(int worker, int q_index, int g_index);

  // Worker-side, after the pair completes: clears the heartbeat so an idle
  // worker (out of work while others finish) is never reported as stalled.
  void PairDone(int worker);

  // Worker-side: true when the watchdog flagged this worker's current pair
  // as stalled; consuming clears the flag, so the caller logs the pair's
  // explain record exactly once (when the stalled pair finally completes).
  bool ConsumeStallFlag(int worker);

  // Monitor-side: scans heartbeat slots and returns workers whose current
  // pair has been running longer than `stall_warn_ms`. Each stalled
  // heartbeat is reported once (deduped on the heartbeat timestamp) and its
  // worker's stall flag is set, to be consumed by the worker when the pair
  // finally completes. Single-caller (the JoinPairs monitor thread, or a
  // test driving the tracker directly).
  std::vector<StallEvent> CheckStalls(double stall_warn_ms);

  // Worker-side, gated on params.progress_every > 0: counts a completed
  // pair and logs a rate-limited SIMJ_LOG(INFO) progress line (completed /
  // total, rate, ETA) every `progress_every` completions, at most one line
  // per 100 ms across all workers.
  void NotePairCompleted(int64_t progress_every);

  // Reader-side: point-in-time view. Feeds the ETA throughput window as a
  // side effect (the window is mutex-guarded and reader-only).
  ProgressSnapshot Snapshot();

  // Snapshot() rendered as a single JSON object, for the /statusz section.
  std::string StatusJson();

  // Pure ETA helper: seconds left for `remaining` pairs at `rate` pairs/s;
  // -1 when the rate is not positive. Exposed for tests.
  static double EtaSeconds(int64_t remaining, double rate);

 private:
  JoinProgress() = default;

  struct alignas(64) WorkerSlot {
    std::atomic<int64_t> heartbeat_ns{0};  // steady-clock ns; 0 = idle
    std::atomic<int32_t> q_index{-1};
    std::atomic<int32_t> g_index{-1};
    std::atomic<bool> stall_flagged{false};
    // Monitor-thread only (CheckStalls is single-caller): dedup key of the
    // last heartbeat already reported as stalled.
    int64_t last_stall_reported_ns = 0;
  };

  std::atomic<bool> heartbeats_requested_{false};
  std::atomic<bool> heartbeats_armed_{false};
  std::atomic<bool> active_{false};
  std::atomic<int64_t> joins_started_{0};
  std::atomic<int64_t> total_pairs_{0};
  std::atomic<int> workers_{0};
  std::atomic<int64_t> join_start_ns_{0};
  // Registry-counter baselines captured at BeginJoin.
  std::atomic<int64_t> base_pairs_{0};
  std::atomic<int64_t> base_pruned_structural_{0};
  std::atomic<int64_t> base_pruned_probabilistic_{0};
  std::atomic<int64_t> base_candidates_{0};
  std::atomic<int64_t> base_results_{0};

  WorkerSlot slots_[kMaxTrackedWorkers];

  // --progress_every state (worker-shared, relaxed).
  std::atomic<int64_t> progress_counter_{0};
  std::atomic<int64_t> last_progress_log_ns_{0};

  // ETA throughput window: (steady ns, completed pairs) samples over the
  // last kEtaWindowSeconds, appended by Snapshot() under eta_mu_.
  static constexpr double kEtaWindowSeconds = 10.0;
  Mutex eta_mu_;  // leaf lock: reader-side only, nothing acquired under it
  std::deque<std::pair<int64_t, int64_t>> eta_window_
      SIMJ_GUARDED_BY(eta_mu_);
  // joins_started_ the window belongs to
  int64_t eta_window_join_ SIMJ_GUARDED_BY(eta_mu_) = -1;
};

}  // namespace simj::core

#endif  // SIMJ_CORE_PROGRESS_H_
