// Size-signature index over the certain graph set D.
//
// The vertex/edge-count lower bound [29] depends only on graph sizes, and
// every possible world of an uncertain graph shares its structure. Bucketing
// D by (|V|, |E|) therefore lets the join skip whole buckets per uncertain
// graph: only buckets with |dV| + |dE| <= tau can contain candidates. The
// paper evaluates a plain nested-loop join; this is the obvious indexing
// layer on top (ablated in bench_ablation_index).

#ifndef SIMJ_CORE_INDEX_H_
#define SIMJ_CORE_INDEX_H_

#include <map>
#include <utility>
#include <vector>

#include "core/join.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

class CertainGraphIndex {
 public:
  // Keeps a pointer to `d`; the caller owns the vector and must keep it
  // alive and unmodified for the index's lifetime.
  explicit CertainGraphIndex(const std::vector<graph::LabeledGraph>* d);

  // Indices into D whose count lower bound against `g` is <= tau, in
  // ascending order. Everything excluded is provably dissimilar in every
  // possible world.
  std::vector<int> Candidates(const graph::UncertainGraph& g, int tau) const;

  int64_t num_graphs() const { return num_graphs_; }

  // The signature buckets, keyed by (|V|, |E|) ascending, each holding the
  // indices into D with that signature (ascending). The shard planner
  // (src/dist) partitions the candidate space along these buckets.
  const std::map<std::pair<int, int>, std::vector<int>>& buckets() const {
    return buckets_;
  }

  // The count lower bound test behind Candidates(): true when a graph with
  // signature (`vertices`, `edges`) can be within `tau` edits of `g` in
  // some possible world. Exposed so the shard planner prunes buckets with
  // exactly the semantics of IndexedSimJoin.
  static bool SignatureSurvives(int vertices, int edges,
                                const graph::UncertainGraph& g, int tau);

 private:
  const std::vector<graph::LabeledGraph>* d_;
  // (|V|, |E|) -> indices into D.
  std::map<std::pair<int, int>, std::vector<int>> buckets_;
  int64_t num_graphs_ = 0;
};

// SimJoin driven by the size index: identical result set to SimJoin, with
// index-skipped pairs counted in stats.pruned_structural (they are pruned
// by the count bound, a structural filter).
JoinResult IndexedSimJoin(const std::vector<graph::LabeledGraph>& d,
                          const std::vector<graph::UncertainGraph>& u,
                          const SimJParams& params,
                          const graph::LabelDictionary& dict);

}  // namespace simj::core

#endif  // SIMJ_CORE_INDEX_H_
