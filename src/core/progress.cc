#include "core/progress.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/health.h"
#include "util/log.h"
#include "util/metrics.h"

namespace simj::core {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The join counters whose deltas are the progress counts. Same instances
// JoinMetrics in join.cc increments; cached references are process-lifetime.
struct ProgressCounters {
  metrics::Counter& pairs;
  metrics::Counter& pruned_structural;
  metrics::Counter& pruned_probabilistic;
  metrics::Counter& candidates;
  metrics::Counter& results;

  static const ProgressCounters& Get() {
    static ProgressCounters* c = [] {
      metrics::Registry& r = metrics::Registry::Global();
      return new ProgressCounters{  // simj-lint: allow(new) leaky singleton
          r.GetCounter("simj_join_pairs_total"),
          r.GetCounter("simj_join_pruned_structural_total"),
          r.GetCounter("simj_join_pruned_probabilistic_total"),
          r.GetCounter("simj_join_candidates_total"),
          r.GetCounter("simj_join_results_total"),
      };
    }();
    return *c;
  }
};

// Minimum spacing between --progress_every lines, across all workers.
constexpr int64_t kProgressLogMinIntervalNs = 100'000'000;  // 100 ms

}  // namespace

JoinProgress& JoinProgress::Global() {
  static JoinProgress* progress =
      new JoinProgress();  // simj-lint: allow(new) leaky singleton
  return *progress;
}

void JoinProgress::BeginJoin(int64_t total_pairs, int workers,
                             bool heartbeats) {
  // A stall belongs to one join; a new join starting cleanly un-degrades
  // /healthz (the watchdog re-reports if this join stalls too).
  health::SetHealthy("stall_watchdog");
  const ProgressCounters& c = ProgressCounters::Get();
  base_pairs_.store(c.pairs.Value(), std::memory_order_relaxed);
  base_pruned_structural_.store(c.pruned_structural.Value(),
                                std::memory_order_relaxed);
  base_pruned_probabilistic_.store(c.pruned_probabilistic.Value(),
                                   std::memory_order_relaxed);
  base_candidates_.store(c.candidates.Value(), std::memory_order_relaxed);
  base_results_.store(c.results.Value(), std::memory_order_relaxed);
  total_pairs_.store(total_pairs, std::memory_order_relaxed);
  workers_.store(workers, std::memory_order_relaxed);
  join_start_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  progress_counter_.store(0, std::memory_order_relaxed);
  last_progress_log_ns_.store(0, std::memory_order_relaxed);
  const int tracked = std::min(workers, kMaxTrackedWorkers);
  for (int w = 0; w < tracked; ++w) {
    slots_[w].heartbeat_ns.store(0, std::memory_order_relaxed);
    slots_[w].q_index.store(-1, std::memory_order_relaxed);
    slots_[w].g_index.store(-1, std::memory_order_relaxed);
    slots_[w].stall_flagged.store(false, std::memory_order_relaxed);
    slots_[w].last_stall_reported_ns = 0;
  }
  heartbeats_armed_.store(heartbeats, std::memory_order_relaxed);
  joins_started_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void JoinProgress::EndJoin() {
  active_.store(false, std::memory_order_relaxed);
  heartbeats_armed_.store(false, std::memory_order_relaxed);
}

void JoinProgress::Heartbeat(int worker, int q_index, int g_index) {
  WorkerSlot& slot = slots_[std::min(worker, kMaxTrackedWorkers - 1)];
  slot.q_index.store(q_index, std::memory_order_relaxed);
  slot.g_index.store(g_index, std::memory_order_relaxed);
  slot.heartbeat_ns.store(SteadyNowNs(), std::memory_order_relaxed);
}

void JoinProgress::PairDone(int worker) {
  WorkerSlot& slot = slots_[std::min(worker, kMaxTrackedWorkers - 1)];
  slot.heartbeat_ns.store(0, std::memory_order_relaxed);
}

bool JoinProgress::ConsumeStallFlag(int worker) {
  WorkerSlot& slot = slots_[std::min(worker, kMaxTrackedWorkers - 1)];
  // Cheap relaxed read first: the flag is almost never set.
  if (!slot.stall_flagged.load(std::memory_order_relaxed)) return false;
  return slot.stall_flagged.exchange(false, std::memory_order_relaxed);
}

std::vector<StallEvent> JoinProgress::CheckStalls(double stall_warn_ms) {
  std::vector<StallEvent> events;
  if (stall_warn_ms <= 0.0) return events;
  const int tracked =
      std::min(workers_.load(std::memory_order_relaxed), kMaxTrackedWorkers);
  const int64_t now_ns = SteadyNowNs();
  for (int w = 0; w < tracked; ++w) {
    WorkerSlot& slot = slots_[w];
    const int64_t beat_ns = slot.heartbeat_ns.load(std::memory_order_relaxed);
    if (beat_ns == 0) continue;              // never beat this join
    if (beat_ns == slot.last_stall_reported_ns) continue;  // already reported
    const double age_ms = static_cast<double>(now_ns - beat_ns) * 1e-6;
    if (age_ms <= stall_warn_ms) continue;
    slot.last_stall_reported_ns = beat_ns;
    slot.stall_flagged.store(true, std::memory_order_relaxed);
    StallEvent event;
    event.worker = w;
    event.q_index = slot.q_index.load(std::memory_order_relaxed);
    event.g_index = slot.g_index.load(std::memory_order_relaxed);
    event.stalled_ms = age_ms;
    events.push_back(event);
  }
  return events;
}

void JoinProgress::NotePairCompleted(int64_t progress_every) {
  if (progress_every <= 0) return;
  const int64_t done =
      progress_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (done % progress_every != 0) return;
  // Rate limit across workers: one line per 100 ms, first writer wins.
  const int64_t now_ns = SteadyNowNs();
  int64_t last_ns = last_progress_log_ns_.load(std::memory_order_relaxed);
  if (now_ns - last_ns < kProgressLogMinIntervalNs) return;
  if (!last_progress_log_ns_.compare_exchange_strong(
          last_ns, now_ns, std::memory_order_relaxed)) {
    return;
  }
  ProgressSnapshot snapshot = Snapshot();
  char line[192];
  if (snapshot.eta_seconds >= 0.0) {
    std::snprintf(line, sizeof(line),
                  "join progress: %lld/%lld pairs (%.1f%%), %.1f pairs/s, "
                  "eta %.1fs",
                  static_cast<long long>(snapshot.completed_pairs),
                  static_cast<long long>(snapshot.total_pairs),
                  snapshot.total_pairs > 0
                      ? 100.0 * static_cast<double>(snapshot.completed_pairs) /
                            static_cast<double>(snapshot.total_pairs)
                      : 0.0,
                  snapshot.pairs_per_second, snapshot.eta_seconds);
  } else {
    std::snprintf(line, sizeof(line),
                  "join progress: %lld/%lld pairs",
                  static_cast<long long>(snapshot.completed_pairs),
                  static_cast<long long>(snapshot.total_pairs));
  }
  SIMJ_LOG(INFO) << line;
}

double JoinProgress::EtaSeconds(int64_t remaining, double rate) {
  if (remaining <= 0) return 0.0;
  if (!(rate > 0.0)) return -1.0;  // also catches NaN
  return static_cast<double>(remaining) / rate;
}

ProgressSnapshot JoinProgress::Snapshot() {
  const ProgressCounters& c = ProgressCounters::Get();
  ProgressSnapshot snapshot;
  snapshot.active = active();
  snapshot.joins_started = joins_started_.load(std::memory_order_relaxed);
  snapshot.total_pairs = total_pairs_.load(std::memory_order_relaxed);
  snapshot.completed_pairs =
      c.pairs.Value() - base_pairs_.load(std::memory_order_relaxed);
  // The distributed join re-evaluates pairs from shards abandoned by dead
  // workers, so the registry delta can overshoot the planned total. Clamp:
  // completion must never read past 100% nor yield a negative ETA.
  if (snapshot.total_pairs > 0 &&
      snapshot.completed_pairs > snapshot.total_pairs) {
    snapshot.completed_pairs = snapshot.total_pairs;
  }
  snapshot.pruned_structural =
      c.pruned_structural.Value() -
      base_pruned_structural_.load(std::memory_order_relaxed);
  snapshot.pruned_probabilistic =
      c.pruned_probabilistic.Value() -
      base_pruned_probabilistic_.load(std::memory_order_relaxed);
  snapshot.candidates =
      c.candidates.Value() - base_candidates_.load(std::memory_order_relaxed);
  snapshot.results =
      c.results.Value() - base_results_.load(std::memory_order_relaxed);
  snapshot.workers = workers_.load(std::memory_order_relaxed);

  const int64_t now_ns = SteadyNowNs();
  const int64_t start_ns = join_start_ns_.load(std::memory_order_relaxed);
  snapshot.elapsed_seconds =
      start_ns == 0 ? 0.0 : static_cast<double>(now_ns - start_ns) * 1e-9;

  // Throughput window: reader-only, so a plain mutex is fine here.
  double rate = 0.0;
  {
    MutexLock lock(eta_mu_);
    if (eta_window_join_ != snapshot.joins_started) {
      eta_window_.clear();
      eta_window_join_ = snapshot.joins_started;
    }
    eta_window_.emplace_back(now_ns, snapshot.completed_pairs);
    const int64_t horizon_ns =
        now_ns - static_cast<int64_t>(kEtaWindowSeconds * 1e9);
    while (eta_window_.size() > 2 && eta_window_.front().first < horizon_ns) {
      eta_window_.pop_front();
    }
    const auto& [first_ns, first_done] = eta_window_.front();
    const double window_seconds =
        static_cast<double>(now_ns - first_ns) * 1e-9;
    const int64_t window_done = snapshot.completed_pairs - first_done;
    if (window_seconds > 0.0 && window_done > 0) {
      rate = static_cast<double>(window_done) / window_seconds;
    } else if (snapshot.elapsed_seconds > 0.0) {
      // Whole-join average until the window has seen progress.
      rate = static_cast<double>(snapshot.completed_pairs) /
             snapshot.elapsed_seconds;
    }
  }
  snapshot.pairs_per_second = rate;
  snapshot.eta_seconds =
      EtaSeconds(snapshot.total_pairs - snapshot.completed_pairs, rate);

  if (heartbeats_armed()) {
    const int tracked = std::min(snapshot.workers, kMaxTrackedWorkers);
    for (int w = 0; w < tracked; ++w) {
      const int64_t beat_ns =
          slots_[w].heartbeat_ns.load(std::memory_order_relaxed);
      if (beat_ns == 0) continue;
      ProgressSnapshot::WorkerHeartbeat heartbeat;
      heartbeat.worker = w;
      heartbeat.age_ms = static_cast<double>(now_ns - beat_ns) * 1e-6;
      heartbeat.q_index = slots_[w].q_index.load(std::memory_order_relaxed);
      heartbeat.g_index = slots_[w].g_index.load(std::memory_order_relaxed);
      snapshot.heartbeats.push_back(heartbeat);
    }
  }
  return snapshot;
}

std::string JoinProgress::StatusJson() {
  ProgressSnapshot s = Snapshot();
  std::string out;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"active\":%s,\"joins_started\":%lld,\"total_pairs\":%lld,"
      "\"completed_pairs\":%lld,\"pruned_structural\":%lld,"
      "\"pruned_probabilistic\":%lld,\"candidates\":%lld,\"results\":%lld,"
      "\"workers\":%d,\"elapsed_seconds\":%.3f,\"pairs_per_second\":%.3f,"
      "\"eta_seconds\":%.3f,\"heartbeats\":[",
      s.active ? "true" : "false", static_cast<long long>(s.joins_started),
      static_cast<long long>(s.total_pairs),
      static_cast<long long>(s.completed_pairs),
      static_cast<long long>(s.pruned_structural),
      static_cast<long long>(s.pruned_probabilistic),
      static_cast<long long>(s.candidates),
      static_cast<long long>(s.results), s.workers, s.elapsed_seconds,
      s.pairs_per_second, s.eta_seconds);
  out += buffer;
  bool first = true;
  for (const ProgressSnapshot::WorkerHeartbeat& heartbeat : s.heartbeats) {
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"worker\":%d,\"age_ms\":%.3f,\"q\":%d,\"g\":%d}",
                  first ? "" : ",", heartbeat.worker, heartbeat.age_ms,
                  heartbeat.q_index, heartbeat.g_index);
    out += buffer;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace simj::core
