// Similarity probability between a certain graph and an uncertain graph
// (paper Def. 6) and its probabilistic upper bound (Thm. 4).
//
//   SimP_tau(q, g) = sum of Pr{pw(g)} over possible worlds pw(g)
//                    with ged(q, pw(g)) <= tau.
//
// ComputeSimP enumerates the possible worlds exactly (skipping worlds whose
// certain CSS bound already exceeds tau). VerifySimP adds the two early
// exits used by the join's refinement phase: stop as soon as the
// accumulated probability reaches alpha, or as soon as the remaining mass
// cannot reach alpha.

#ifndef SIMJ_CORE_SIMILARITY_H_
#define SIMJ_CORE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "ged/edit_distance.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

// Comparison slack for probability thresholds: SimP values are products and
// sums of doubles, so "SimP >= alpha" is evaluated as
// "SimP >= alpha - kSimPEpsilon" everywhere (early exits and final
// decisions must agree, or results would not be monotone in alpha).
inline constexpr double kSimPEpsilon = 1e-9;

// Counters shared by similarity evaluation; the join aggregates them.
struct VerifyStats {
  int64_t worlds_enumerated = 0;
  int64_t worlds_pruned_by_bound = 0;  // per-world certain CSS bound > tau
  int64_t worlds_accepted_by_upper_bound = 0;  // greedy GED bound <= tau
  int64_t ged_calls = 0;
  int64_t ged_aborted = 0;  // A* expansion cap hit (counted as non-match)
};

struct SimPResult {
  // Accumulated probability of qualifying worlds. Exact for ComputeSimP;
  // for VerifySimP it is exact unless `early_accept` is set, in which case
  // it is a lower bound that already reaches alpha.
  double probability = 0.0;
  bool early_accept = false;
  bool early_reject = false;
  // Vertex mapping q -> g of the most probable qualifying world (-1 for
  // deleted q-vertices); empty when no world qualified. This is the
  // matching that template generation consumes.
  std::vector<int> best_mapping;
  // GED and probability of that world.
  int best_world_ged = -1;
  double best_world_prob = 0.0;
};

// Exact SimP_tau(q, g). Enumerates every possible world of g.
[[nodiscard]] SimPResult ComputeSimP(const graph::LabeledGraph& q,
                       const graph::UncertainGraph& g, int tau,
                       const graph::LabelDictionary& dict,
                       const ged::GedOptions& options = ged::GedOptions(),
                       VerifyStats* stats = nullptr);

// SimP evaluation with early accept/reject against `alpha`, over a list of
// possible-world groups (pass {g} for the ungrouped case). Groups must be
// disjoint restrictions of one uncertain graph; `total_mass` is the sum of
// their masses (the probability not yet ruled out by group-level pruning).
[[nodiscard]] SimPResult VerifySimP(const graph::LabeledGraph& q,
                      const std::vector<graph::UncertainGraph>& groups,
                      double total_mass, int tau, double alpha,
                      const graph::LabelDictionary& dict,
                      const ged::GedOptions& options = ged::GedOptions(),
                      VerifyStats* stats = nullptr);

// Probabilistic upper bound on the contribution of (a restriction of) g to
// SimP_tau(q, g) (Thm. 4, generalized to possible-world groups):
//
//   ub = min(mass(g), E[Y * 1_group] / (C(q, g) - tau))
//
// where E(y_v) is the probability mass of v's label alternatives that match
// some vertex label of q. When C - tau <= 0 the Markov bound is vacuous and
// mass(g) is returned.
[[nodiscard]] double UpperBoundSimP(const graph::LabeledGraph& q,
                      const graph::UncertainGraph& g, int tau,
                      const graph::LabelDictionary& dict);

// Same, reusing a precomputed structural constant C(q, g) (identical for
// every group of one uncertain graph).
[[nodiscard]] double UpperBoundSimPWithConstant(const graph::LabeledGraph& q,
                                  const graph::UncertainGraph& g, int tau,
                                  int structural_constant,
                                  const graph::LabelDictionary& dict);

// Tighter upper bound via the law of total probability (the extension the
// paper sketches at the end of Section 5): condition on the label of the
// `depth` most uncertain vertices and sum the per-restriction bounds
//   SimP(q, g) = sum_l Pr{l(v) = l} SimP(q, g | l(v) = l)
//             <= sum_l ub_SimP(q, g restricted to l(v) = l).
// Each restriction also gets its own CSS lower bound (restrictions whose
// bound exceeds tau contribute zero). depth = 0 degenerates to Thm. 4.
[[nodiscard]] double UpperBoundSimPTotalProbability(const graph::LabeledGraph& q,
                                      const graph::UncertainGraph& g,
                                      int tau,
                                      const graph::LabelDictionary& dict,
                                      int depth = 1);

}  // namespace simj::core

#endif  // SIMJ_CORE_SIMILARITY_H_
