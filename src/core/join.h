// The SimJ similarity join (paper Def. 7, Algorithm 1).
//
// Given certain graphs D (SPARQL query graphs) and uncertain graphs U
// (natural-language question graphs), returns every pair <q, g> with
// SimP_tau(q, g) >= alpha using filter-and-refine:
//
//   1. structural pruning   : CSS lower bound (Thm. 3) > tau  => prune
//   2. probabilistic pruning: Markov upper bound (Thm. 4) < alpha => prune
//      (optionally over possible-world groups, Section 6.2)
//   3. verification         : possible-world enumeration with per-world
//      CSS bound, bounded A* GED, and alpha early accept/reject.
//
// Three configurations reproduce the paper's curves: CSS only
// (probabilistic pruning off), SimJ (both prunings, one group), SimJ+opt
// (group optimization on).

#ifndef SIMJ_CORE_JOIN_H_
#define SIMJ_CORE_JOIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/groups.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

// Which pipeline stage eliminated a pair (or kNone when it reached a final
// verification decision). Stages are listed in pipeline order.
enum class PruneStage {
  kNone = 0,       // survived every filter; verification decided the pair
  kIndexCount,     // skipped by the size-signature index (count bound)
  kStructural,     // CSS uncertain bound > tau (Thm. 3)
  kProbabilistic,  // Markov / group upper bound < alpha (Thm. 4)
};

const char* PruneStageName(PruneStage stage);

// Per-pair audit trail for explain mode: which stage pruned the pair, or
// the bound values that let it through to verification and the
// verification outcome. Fields are -1 / false when their stage never ran.
struct PairExplain {
  int q_index = -1;
  int g_index = -1;
  PruneStage pruned_by = PruneStage::kNone;
  bool accepted = false;  // final decision (only meaningful when not pruned)
  // Filter evidence.
  int css_lower_bound = -1;       // CSS uncertain bound (structural filter)
  double simp_upper_bound = -1.0; // summed group Markov bound (prob. filter)
  int live_groups = -1;           // groups surviving lb <= tau
  double live_mass = -1.0;        // probability mass still in play
  // Verification evidence.
  double simp_probability = -1.0; // accumulated SimP (lower bound on early accept)
  bool early_accept = false;
  bool early_reject = false;
  int64_t worlds_enumerated = 0;
  int64_t ged_calls = 0;
  int best_world_ged = -1;
};

// Selects which pairs get a PairExplain recorded. Recording never changes
// the join's results or counters; the selection is a pure function of
// (q_index, g_index), so explain output is identical at every thread count.
struct ExplainOptions {
  bool enabled = false;
  // With `pairs` empty: record every pair whose deterministic sample key
  // (q_index * 1000003 + g_index) is divisible by `sample_every`.
  // 1 records everything.
  int64_t sample_every = 1;
  // When non-empty, record exactly these <q_index, g_index> pairs.
  std::vector<std::pair<int, int>> pairs;

  bool ShouldExplain(int q_index, int g_index) const;
};

struct SimJParams {
  // GED threshold tau (Def. 7).
  int tau = 1;
  // Similarity probability threshold alpha in (0, 1].
  double alpha = 0.5;
  // Enable the CSS structural pruning.
  bool structural_pruning = true;
  // Enable the probabilistic pruning.
  bool probabilistic_pruning = true;
  // Number of possible-world groups (1 = no group optimization).
  int group_count = 1;
  // Vertex-selection principle for group splits (Section 6.2).
  SplitHeuristic split_heuristic = SplitHeuristic::kCostModel;
  // Stop verification as soon as alpha is provably reached/unreachable.
  bool early_exit_verification = true;
  // Worker threads for the join loop. 1 = the exact legacy serial path
  // (no pool, no freeze); 0 = one per hardware thread; >1 = that many
  // workers. Any value other than 1 freezes the label dictionary for the
  // duration of the join (see LabelDictionary::Freeze) and shards the
  // candidate pairs across a work-stealing pool. Results are sorted by
  // (q_index, g_index), so output is byte-identical at every thread count.
  int num_threads = 1;
  // Explain mode: record per-pair prune/bound audit trails into
  // JoinResult::explains (off by default; costs nothing when disabled).
  ExplainOptions explain;
  // Slow-pair watchdog: when > 0, JoinPairs logs (SIMJ_LOG(WARN), with the
  // pair's explain record) every pair whose full filter+verify evaluation
  // exceeds this many milliseconds. Logging only — results, stats, and
  // explain output are byte-identical whether it fires or not, at every
  // thread count. 0 disables the watchdog (the per-pair clock read it
  // shares with explain capture is one steady_clock call, below noise).
  double slow_pair_log_ms = 1000.0;
  // Stall watchdog (complements slow_pair_log_ms, which cannot see a pair
  // that never finishes): when > 0, JoinPairs runs a monitor thread that
  // samples per-worker heartbeats and logs SIMJ_LOG(WARN) as soon as a
  // worker has been inside one pair longer than this many milliseconds; the
  // stalled pair's full explain record is logged when it eventually
  // completes. Logging only — results, stats, and explain output stay
  // byte-identical. 0 (the default) disables the watchdog and its
  // per-pair heartbeat stores.
  double stall_warn_ms = 0.0;
  // When > 0, log a SIMJ_LOG(INFO) progress line (completed/total, rate,
  // ETA) every N completed pairs, rate-limited to one line per 100 ms
  // across workers. 0 (the default) disables progress lines.
  int64_t progress_every = 0;
  ged::GedOptions ged_options;
};

struct JoinStats {
  int64_t total_pairs = 0;
  int64_t pruned_structural = 0;
  int64_t pruned_probabilistic = 0;
  int64_t candidates = 0;  // pairs that reached verification
  int64_t results = 0;
  VerifyStats verify;
  // Per-phase time attributed inside EvaluatePair. On a parallel join these
  // are CPU-seconds summed across workers, NOT elapsed time — a join on 8
  // busy workers reports ~8x the wall clock here.
  double pruning_cpu_seconds = 0.0;
  double verification_cpu_seconds = 0.0;
  // Elapsed time of the whole join, measured once around it by SimJoin /
  // IndexedSimJoin (never summed across workers; MergeJoinStats leaves it
  // alone). This is the number to report as response time.
  double wall_seconds = 0.0;

  double TotalCpuSeconds() const {
    return pruning_cpu_seconds + verification_cpu_seconds;
  }
  // Fraction of the |D| x |U| cross product that survived pruning.
  double CandidateRatio() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(candidates) / static_cast<double>(total_pairs);
  }
};

struct MatchedPair {
  int q_index = -1;  // index into D
  int g_index = -1;  // index into U
  // SimP_tau (exact, or a lower bound >= alpha under early accept).
  double similarity_probability = 0.0;
  // q-vertex -> g-vertex mapping of the most probable qualifying world;
  // feeds template generation.
  std::vector<int> mapping;
  int best_world_ged = -1;
};

struct JoinResult {
  std::vector<MatchedPair> pairs;
  JoinStats stats;
  // Audit trails for the pairs selected by SimJParams::explain, sorted by
  // (q_index, g_index). Empty when explain mode is off.
  std::vector<PairExplain> explains;
};

// Accumulates per-thread counters into *into: all counters (including the
// nested VerifyStats) add, and the per-phase *_cpu_seconds add (they are
// CPU attribution). wall_seconds is NOT merged — it is measured once
// around the whole join.
void MergeJoinStats(const JoinStats& from, JoinStats* into);

// Evaluates a single pair through the full filter-and-refine pipeline.
// Returns true (and fills *pair) when SimP_tau(q, g) >= alpha. When
// `explain` is non-null, the pair's audit trail is recorded into it
// (q_index / g_index are left for the caller to fill).
[[nodiscard]] bool EvaluatePair(const graph::LabeledGraph& q,
                  const graph::UncertainGraph& g, const SimJParams& params,
                  const graph::LabelDictionary& dict, JoinStats* stats,
                  MatchedPair* pair, PairExplain* explain = nullptr);

// One human-readable line per explain record, e.g.
//   <q=3,g=7> PRUNED structural: css_lb=4 > tau=2
//   <q=1,g=2> ACCEPT simp=0.8125 >= alpha=0.5 ...
std::string FormatExplain(const PairExplain& explain,
                          const SimJParams& params);

// Every explain record of `result`, one line each.
std::string FormatExplains(const JoinResult& result,
                           const SimJParams& params);

// Algorithm 1: nested-loop join of D with U under the configured prunings.
// With params.num_threads != 1 the |D| x |U| pairs are sharded across a
// work-stealing pool (see SimJParams::num_threads).
[[nodiscard]] JoinResult SimJoin(const std::vector<graph::LabeledGraph>& d,
                   const std::vector<graph::UncertainGraph>& u,
                   const SimJParams& params,
                   const graph::LabelDictionary& dict);

// Shared join engine behind SimJoin and IndexedSimJoin: evaluates the
// `num_pairs` candidate pairs enumerated by `pair_at` (flat id -> (q_index,
// g_index)), serially when params.num_threads == 1 and across a
// work-stealing pool otherwise. Qualifying pairs are appended to
// result->pairs and the whole vector is sorted by (q_index, g_index);
// per-thread stats are merged into result->stats (which may already carry
// counts from index-level pruning). `pair_at` must be pure: it is called
// concurrently from workers.
void JoinPairs(const std::vector<graph::LabeledGraph>& d,
               const std::vector<graph::UncertainGraph>& u,
               const SimJParams& params, const graph::LabelDictionary& dict,
               int64_t num_pairs,
               const std::function<std::pair<int, int>(int64_t)>& pair_at,
               JoinResult* result);

// Shard-aware entry point for the distributed join (src/dist): evaluates an
// explicit candidate list in order on the calling thread as logical worker
// `worker`. Per-pair behavior — explain sampling, the slow-pair watchdog,
// stall-flag consumption, heartbeats (gated on
// JoinProgress::heartbeats_armed(), armed by the caller's BeginJoin) — is
// bit-for-bit the same work JoinPairs does for those pairs. Stats
// accumulate into result->stats; qualifying pairs and explain records are
// appended UNSORTED: the caller owns BeginJoin/EndJoin, the stall monitor
// thread, and the final (q_index, g_index) merge ordering.
void EvaluatePairList(const std::vector<graph::LabeledGraph>& d,
                      const std::vector<graph::UncertainGraph>& u,
                      const SimJParams& params,
                      const graph::LabelDictionary& dict,
                      const std::vector<std::pair<int, int>>& pairs,
                      int worker, JoinResult* result);

}  // namespace simj::core

#endif  // SIMJ_CORE_JOIN_H_
