// The SimJ similarity join (paper Def. 7, Algorithm 1).
//
// Given certain graphs D (SPARQL query graphs) and uncertain graphs U
// (natural-language question graphs), returns every pair <q, g> with
// SimP_tau(q, g) >= alpha using filter-and-refine:
//
//   1. structural pruning   : CSS lower bound (Thm. 3) > tau  => prune
//   2. probabilistic pruning: Markov upper bound (Thm. 4) < alpha => prune
//      (optionally over possible-world groups, Section 6.2)
//   3. verification         : possible-world enumeration with per-world
//      CSS bound, bounded A* GED, and alpha early accept/reject.
//
// Three configurations reproduce the paper's curves: CSS only
// (probabilistic pruning off), SimJ (both prunings, one group), SimJ+opt
// (group optimization on).

#ifndef SIMJ_CORE_JOIN_H_
#define SIMJ_CORE_JOIN_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/groups.h"
#include "core/similarity.h"
#include "ged/edit_distance.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

struct SimJParams {
  // GED threshold tau (Def. 7).
  int tau = 1;
  // Similarity probability threshold alpha in (0, 1].
  double alpha = 0.5;
  // Enable the CSS structural pruning.
  bool structural_pruning = true;
  // Enable the probabilistic pruning.
  bool probabilistic_pruning = true;
  // Number of possible-world groups (1 = no group optimization).
  int group_count = 1;
  // Vertex-selection principle for group splits (Section 6.2).
  SplitHeuristic split_heuristic = SplitHeuristic::kCostModel;
  // Stop verification as soon as alpha is provably reached/unreachable.
  bool early_exit_verification = true;
  // Worker threads for the join loop. 1 = the exact legacy serial path
  // (no pool, no freeze); 0 = one per hardware thread; >1 = that many
  // workers. Any value other than 1 freezes the label dictionary for the
  // duration of the join (see LabelDictionary::Freeze) and shards the
  // candidate pairs across a work-stealing pool. Results are sorted by
  // (q_index, g_index), so output is byte-identical at every thread count.
  int num_threads = 1;
  ged::GedOptions ged_options;
};

struct JoinStats {
  int64_t total_pairs = 0;
  int64_t pruned_structural = 0;
  int64_t pruned_probabilistic = 0;
  int64_t candidates = 0;  // pairs that reached verification
  int64_t results = 0;
  VerifyStats verify;
  double pruning_seconds = 0.0;
  double verification_seconds = 0.0;

  double TotalSeconds() const { return pruning_seconds + verification_seconds; }
  // Fraction of the |D| x |U| cross product that survived pruning.
  double CandidateRatio() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(candidates) / static_cast<double>(total_pairs);
  }
};

struct MatchedPair {
  int q_index = -1;  // index into D
  int g_index = -1;  // index into U
  // SimP_tau (exact, or a lower bound >= alpha under early accept).
  double similarity_probability = 0.0;
  // q-vertex -> g-vertex mapping of the most probable qualifying world;
  // feeds template generation.
  std::vector<int> mapping;
  int best_world_ged = -1;
};

struct JoinResult {
  std::vector<MatchedPair> pairs;
  JoinStats stats;
};

// Accumulates per-thread counters into *into: all counters (including the
// nested VerifyStats) add. Seconds also add, so on a parallel join the
// merged timings are CPU-seconds across workers, not wall clock.
void MergeJoinStats(const JoinStats& from, JoinStats* into);

// Evaluates a single pair through the full filter-and-refine pipeline.
// Returns true (and fills *pair) when SimP_tau(q, g) >= alpha.
bool EvaluatePair(const graph::LabeledGraph& q,
                  const graph::UncertainGraph& g, const SimJParams& params,
                  const graph::LabelDictionary& dict, JoinStats* stats,
                  MatchedPair* pair);

// Algorithm 1: nested-loop join of D with U under the configured prunings.
// With params.num_threads != 1 the |D| x |U| pairs are sharded across a
// work-stealing pool (see SimJParams::num_threads).
JoinResult SimJoin(const std::vector<graph::LabeledGraph>& d,
                   const std::vector<graph::UncertainGraph>& u,
                   const SimJParams& params,
                   const graph::LabelDictionary& dict);

// Shared join engine behind SimJoin and IndexedSimJoin: evaluates the
// `num_pairs` candidate pairs enumerated by `pair_at` (flat id -> (q_index,
// g_index)), serially when params.num_threads == 1 and across a
// work-stealing pool otherwise. Qualifying pairs are appended to
// result->pairs and the whole vector is sorted by (q_index, g_index);
// per-thread stats are merged into result->stats (which may already carry
// counts from index-level pruning). `pair_at` must be pure: it is called
// concurrently from workers.
void JoinPairs(const std::vector<graph::LabeledGraph>& d,
               const std::vector<graph::UncertainGraph>& u,
               const SimJParams& params, const graph::LabelDictionary& dict,
               int64_t num_pairs,
               const std::function<std::pair<int, int>(int64_t)>& pair_at,
               JoinResult* result);

}  // namespace simj::core

#endif  // SIMJ_CORE_JOIN_H_
