// Top-k similarity join: for every uncertain graph, the k certain graphs
// with the highest similarity probability SimP_tau.
//
// A natural companion to the thresholded SimJ of Def. 7: instead of a fixed
// alpha, template generation often wants "the best few SPARQL matches per
// question". The evaluator keeps the running k-th best probability as an
// adaptive threshold and reuses the SimJ machinery:
//   - the CSS bound discards pairs with SimP = 0 outright,
//   - the Markov/grouped upper bound discards pairs that provably cannot
//     beat the current k-th best,
//   - survivors get an exact SimP computation (no alpha early exit — the
//     rank needs the value).

#ifndef SIMJ_CORE_TOPK_H_
#define SIMJ_CORE_TOPK_H_

#include <vector>

#include "core/join.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

struct TopKParams {
  int tau = 1;
  int k = 3;
  // Possible-world groups for the adaptive upper bound (1 = plain Thm. 4).
  int group_count = 1;
  ged::GedOptions ged_options;
};

struct TopKStats {
  int64_t total_pairs = 0;
  int64_t pruned_structural = 0;
  int64_t pruned_by_threshold = 0;  // upper bound below current k-th best
  int64_t evaluated = 0;
  VerifyStats verify;
};

struct TopKResult {
  // matches[g] = up to k pairs for uncertain graph g, sorted by descending
  // SimP (ties by ascending q_index). Pairs with SimP = 0 never appear.
  std::vector<std::vector<MatchedPair>> matches;
  TopKStats stats;
};

TopKResult TopKJoin(const std::vector<graph::LabeledGraph>& d,
                    const std::vector<graph::UncertainGraph>& u,
                    const TopKParams& params,
                    const graph::LabelDictionary& dict);

}  // namespace simj::core

#endif  // SIMJ_CORE_TOPK_H_
