#include "core/groups.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/similarity.h"
#include "ged/lower_bounds.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::LabelDictionary;
using graph::UncertainGraph;

ScoredGroup Score(const LabeledGraph& q, UncertainGraph group, int tau,
                  int structural_constant, const LabelDictionary& dict) {
  ScoredGroup scored;
  scored.mass = group.TotalMass();
  scored.lower_bound =
      std::max(0, structural_constant -
                      ged::MaxCommonVertexLabels(q, group, dict));
  scored.upper_bound =
      scored.lower_bound > tau
          ? 0.0
          : UpperBoundSimPWithConstant(q, group, tau, structural_constant,
                                       dict);
  scored.graph = std::move(group);
  return scored;
}

// Candidate vertex-split: restrict vertex v to `first` in one child and to
// the complementary indices in the other.
struct SplitCandidate {
  int vertex = -1;
  std::vector<int> first;
  std::vector<int> second;
};

// The paper's two selection principles produce up to two candidate
// vertices; each is split by separating the highest-probability label from
// the rest (driving one child toward certainty).
std::vector<SplitCandidate> ProposeSplits(const UncertainGraph& g,
                                          SplitHeuristic heuristic) {
  int by_mass = -1;
  double best_mass = -1.0;
  int by_count = -1;
  int best_count = 1;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& alts = g.alternatives(v);
    if (alts.size() < 2) continue;
    double mass = 0.0;
    for (const auto& alt : alts) mass += alt.prob;
    if (mass > best_mass) {
      best_mass = mass;
      by_mass = v;
    }
    if (static_cast<int>(alts.size()) > best_count) {
      best_count = static_cast<int>(alts.size());
      by_count = v;
    }
  }
  std::vector<int> picks;
  switch (heuristic) {
    case SplitHeuristic::kCostModel:
      picks = {by_mass, by_count};
      break;
    case SplitHeuristic::kMassOnly:
      picks = {by_mass};
      break;
    case SplitHeuristic::kCountOnly:
      picks = {by_count};
      break;
  }
  std::vector<SplitCandidate> candidates;
  for (int v : picks) {
    if (v < 0) continue;
    if (!candidates.empty() && candidates.front().vertex == v) continue;
    const auto& alts = g.alternatives(v);
    int top = 0;
    for (int i = 1; i < static_cast<int>(alts.size()); ++i) {
      if (alts[i].prob > alts[top].prob) top = i;
    }
    SplitCandidate candidate;
    candidate.vertex = v;
    candidate.first = {top};
    for (int i = 0; i < static_cast<int>(alts.size()); ++i) {
      if (i != top) candidate.second.push_back(i);
    }
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

double CostOf(const std::vector<ScoredGroup>& groups, int tau) {
  double total = 0.0;
  for (const ScoredGroup& group : groups) {
    if (group.lower_bound <= tau) total += group.upper_bound;
  }
  return total;
}

}  // namespace

GroupingResult PartitionPossibleWorlds(const LabeledGraph& q,
                                       const UncertainGraph& g, int tau,
                                       const LabelDictionary& dict,
                                       const GroupingOptions& options) {
  SIMJ_CHECK_GE(options.group_count, 1);
  static metrics::Histogram& partition_seconds =
      metrics::Registry::Global().GetHistogram(
          "simj_group_partition_seconds");
  static metrics::Counter& groups_scored =
      metrics::Registry::Global().GetCounter("simj_groups_scored_total");
  metrics::ScopedLatency latency(partition_seconds);
  trace::ScopedSpan span("group_partition", "prune");
  const int structural_constant = ged::CssStructuralConstant(q, g, dict);

  std::vector<ScoredGroup> groups;
  groups.push_back(Score(q, g, tau, structural_constant, dict));

  while (static_cast<int>(groups.size()) < options.group_count) {
    // Split the live group with the weakest pruning power: smallest lower
    // bound, ties broken by largest upper bound (Section 6.2).
    int target = -1;
    for (int i = 0; i < static_cast<int>(groups.size()); ++i) {
      const ScoredGroup& group = groups[i];
      if (group.lower_bound > tau) continue;  // already pruned; no benefit
      if (ProposeSplits(group.graph, options.heuristic).empty()) {
        continue;  // fully certain
      }
      if (target == -1 ||
          group.lower_bound < groups[target].lower_bound ||
          (group.lower_bound == groups[target].lower_bound &&
           group.upper_bound > groups[target].upper_bound)) {
        target = i;
      }
    }
    if (target == -1) break;  // nothing splittable

    std::vector<SplitCandidate> candidates =
        ProposeSplits(groups[target].graph, options.heuristic);
    double best_cost = std::numeric_limits<double>::infinity();
    std::pair<ScoredGroup, ScoredGroup> best_children;
    bool have_best = false;
    for (const SplitCandidate& candidate : candidates) {
      ScoredGroup first =
          Score(q,
                groups[target].graph.RestrictVertex(candidate.vertex,
                                                    candidate.first),
                tau, structural_constant, dict);
      ScoredGroup second =
          Score(q,
                groups[target].graph.RestrictVertex(candidate.vertex,
                                                    candidate.second),
                tau, structural_constant, dict);
      double cost = 0.0;
      if (first.lower_bound <= tau) cost += first.upper_bound;
      if (second.lower_bound <= tau) cost += second.upper_bound;
      if (!have_best || cost < best_cost) {
        best_cost = cost;
        best_children = {std::move(first), std::move(second)};
        have_best = true;
      }
    }
    SIMJ_CHECK(have_best);
    groups[target] = std::move(best_children.first);
    groups.push_back(std::move(best_children.second));
  }

  groups_scored.Add(static_cast<int64_t>(groups.size()));
  GroupingResult result;
  result.simp_upper_bound = CostOf(groups, tau);
  for (ScoredGroup& group : groups) {
    if (group.lower_bound > tau) continue;
    result.live_mass += group.mass;
    result.live_groups.push_back(std::move(group));
  }
  return result;
}

}  // namespace simj::core
