#include "core/join.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <thread>

#include "core/progress.h"
#include "ged/lower_bounds.h"
#include "util/health.h"
#include "util/log.h"
#include "util/mem.h"
#include "util/metrics.h"
#include "util/threadpool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::UncertainGraph;

struct JoinMetrics {
  metrics::Counter& pairs_total;
  metrics::Counter& pruned_structural;
  metrics::Counter& pruned_probabilistic;
  metrics::Counter& candidates;
  metrics::Counter& results;
  metrics::Counter& slow_pairs;
  metrics::Histogram& structural_seconds;
  metrics::Histogram& probabilistic_seconds;
  metrics::Histogram& verify_seconds;
  // Pipeline high-water marks (process lifetime, monotonic via UpdateMax).
  metrics::Gauge& candidate_set_peak;
  metrics::Gauge& group_fanout_peak;

  static const JoinMetrics& Get() {
    static JoinMetrics* m = [] {
      metrics::Registry& r = metrics::Registry::Global();
      return new JoinMetrics{  // simj-lint: allow(new) leaky singleton
          r.GetCounter("simj_join_pairs_total"),
          r.GetCounter("simj_join_pruned_structural_total"),
          r.GetCounter("simj_join_pruned_probabilistic_total"),
          r.GetCounter("simj_join_candidates_total"),
          r.GetCounter("simj_join_results_total"),
          r.GetCounter("simj_join_slow_pairs_total"),
          r.GetHistogram("simj_filter_structural_seconds"),
          r.GetHistogram("simj_filter_probabilistic_seconds"),
          r.GetHistogram("simj_verify_pair_seconds"),
          r.GetGauge("simj_join_candidate_set_peak"),
          r.GetGauge("simj_join_group_fanout_peak"),
      };
    }();
    return *m;
  }
};

}  // namespace

const char* PruneStageName(PruneStage stage) {
  switch (stage) {
    case PruneStage::kNone:
      return "none";
    case PruneStage::kIndexCount:
      return "index-count";
    case PruneStage::kStructural:
      return "structural";
    case PruneStage::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

bool ExplainOptions::ShouldExplain(int q_index, int g_index) const {
  if (!enabled) return false;
  if (!pairs.empty()) {
    for (const auto& [qi, gi] : pairs) {
      if (qi == q_index && gi == g_index) return true;
    }
    return false;
  }
  if (sample_every <= 1) return true;
  int64_t key = static_cast<int64_t>(q_index) * 1000003 + g_index;
  return key % sample_every == 0;
}

void MergeJoinStats(const JoinStats& from, JoinStats* into) {
  into->total_pairs += from.total_pairs;
  into->pruned_structural += from.pruned_structural;
  into->pruned_probabilistic += from.pruned_probabilistic;
  into->candidates += from.candidates;
  into->results += from.results;
  into->verify.worlds_enumerated += from.verify.worlds_enumerated;
  into->verify.worlds_pruned_by_bound += from.verify.worlds_pruned_by_bound;
  into->verify.worlds_accepted_by_upper_bound +=
      from.verify.worlds_accepted_by_upper_bound;
  into->verify.ged_calls += from.verify.ged_calls;
  into->verify.ged_aborted += from.verify.ged_aborted;
  into->pruning_cpu_seconds += from.pruning_cpu_seconds;
  into->verification_cpu_seconds += from.verification_cpu_seconds;
  // wall_seconds deliberately not merged: it is elapsed time measured once
  // around the whole join, not a per-worker quantity.
}

bool EvaluatePair(const LabeledGraph& q, const UncertainGraph& g,
                  const SimJParams& params,
                  const graph::LabelDictionary& dict, JoinStats* stats,
                  MatchedPair* pair, PairExplain* explain) {
  const JoinMetrics& jm = JoinMetrics::Get();
  ++stats->total_pairs;
  jm.pairs_total.Increment();
  WallTimer timer;

  // --- Pruning phase ---
  if (params.structural_pruning) {
    trace::ScopedSpan span("css_filter", "prune");
    int lower_bound = ged::CssLowerBoundUncertain(q, g, dict);
    double seconds = timer.ElapsedSeconds();
    jm.structural_seconds.Observe(seconds);
    if (explain != nullptr) explain->css_lower_bound = lower_bound;
    if (lower_bound > params.tau) {
      ++stats->pruned_structural;
      jm.pruned_structural.Increment();
      stats->pruning_cpu_seconds += seconds;
      if (explain != nullptr) explain->pruned_by = PruneStage::kStructural;
      return false;
    }
  }

  GroupingResult grouping;
  bool grouped = false;
  if (params.probabilistic_pruning) {
    trace::ScopedSpan span("markov_filter", "prune");
    WallTimer filter_timer;
    GroupingOptions group_options;
    group_options.group_count = params.group_count;
    group_options.heuristic = params.split_heuristic;
    grouping = PartitionPossibleWorlds(q, g, params.tau, dict, group_options);
    grouped = true;
    jm.probabilistic_seconds.Observe(filter_timer.ElapsedSeconds());
    if (explain != nullptr) {
      explain->simp_upper_bound = grouping.simp_upper_bound;
      explain->live_groups = static_cast<int>(grouping.live_groups.size());
      explain->live_mass = grouping.live_mass;
    }
    if (grouping.simp_upper_bound < params.alpha - kSimPEpsilon) {
      ++stats->pruned_probabilistic;
      jm.pruned_probabilistic.Increment();
      stats->pruning_cpu_seconds += timer.ElapsedSeconds();
      if (explain != nullptr) explain->pruned_by = PruneStage::kProbabilistic;
      return false;
    }
  }
  stats->pruning_cpu_seconds += timer.ElapsedSeconds();

  // --- Refinement phase ---
  timer.Restart();
  trace::ScopedSpan verify_span("verify", "verify");
  ++stats->candidates;
  jm.candidates.Increment();
  const VerifyStats verify_before = stats->verify;

  std::vector<UncertainGraph> groups;
  double live_mass = 0.0;
  if (grouped) {
    // Heavier groups first: they decide more of the mass, so the
    // verification early-exits trigger sooner.
    std::sort(grouping.live_groups.begin(), grouping.live_groups.end(),
              [](const ScoredGroup& a, const ScoredGroup& b) {
                return a.mass > b.mass;
              });
    groups.reserve(grouping.live_groups.size());
    for (ScoredGroup& group : grouping.live_groups) {
      groups.push_back(std::move(group.graph));
    }
    live_mass = grouping.live_mass;
  } else {
    groups.push_back(g);
    live_mass = g.TotalMass();
  }
  jm.group_fanout_peak.UpdateMax(static_cast<double>(groups.size()));

  SimPResult simp;
  if (params.early_exit_verification) {
    simp = VerifySimP(q, groups, live_mass, params.tau, params.alpha, dict,
                      params.ged_options, &stats->verify);
  } else {
    for (const UncertainGraph& group : groups) {
      SimPResult partial = ComputeSimP(q, group, params.tau, dict,
                                       params.ged_options, &stats->verify);
      simp.probability += partial.probability;
      if (partial.best_world_prob > simp.best_world_prob) {
        simp.best_world_prob = partial.best_world_prob;
        simp.best_world_ged = partial.best_world_ged;
        simp.best_mapping = partial.best_mapping;
      }
    }
  }
  double verify_seconds = timer.ElapsedSeconds();
  stats->verification_cpu_seconds += verify_seconds;
  jm.verify_seconds.Observe(verify_seconds);

  // Debug-mode postcondition (Def. 6): SimP is a probability — nonnegative,
  // bounded by the mass still in play after pruning, and by 1.
  SIMJ_DCHECK_GE(simp.probability, 0.0);
  SIMJ_DCHECK_LE(simp.probability, live_mass + kSimPEpsilon);
  SIMJ_DCHECK_LE(simp.probability, 1.0 + kSimPEpsilon);

  bool accepted =
      simp.early_accept || simp.probability >= params.alpha - kSimPEpsilon;
  if (explain != nullptr) {
    explain->simp_probability = simp.probability;
    explain->early_accept = simp.early_accept;
    explain->early_reject = simp.early_reject;
    explain->worlds_enumerated =
        stats->verify.worlds_enumerated - verify_before.worlds_enumerated;
    explain->ged_calls = stats->verify.ged_calls - verify_before.ged_calls;
    explain->best_world_ged = simp.best_world_ged;
    explain->accepted = accepted;
  }
  if (!accepted) return false;
  ++stats->results;
  jm.results.Increment();
  if (pair != nullptr) {
    pair->similarity_probability = simp.probability;
    pair->mapping = simp.best_mapping;
    pair->best_world_ged = simp.best_world_ged;
  }
  return true;
}

std::string FormatExplain(const PairExplain& explain,
                          const SimJParams& params) {
  char buffer[320];
  std::string out;
  std::snprintf(buffer, sizeof(buffer), "<q=%d,g=%d> ", explain.q_index,
                explain.g_index);
  out += buffer;
  switch (explain.pruned_by) {
    case PruneStage::kIndexCount:
      std::snprintf(buffer, sizeof(buffer),
                    "PRUNED index-count: |dV|+|dE| > tau=%d", params.tau);
      out += buffer;
      return out;
    case PruneStage::kStructural:
      std::snprintf(buffer, sizeof(buffer),
                    "PRUNED structural: css_lb=%d > tau=%d",
                    explain.css_lower_bound, params.tau);
      out += buffer;
      return out;
    case PruneStage::kProbabilistic:
      std::snprintf(buffer, sizeof(buffer),
                    "PRUNED probabilistic: ub_simp=%.6g < alpha=%.6g "
                    "(css_lb=%d, live_groups=%d, live_mass=%.6g)",
                    explain.simp_upper_bound, params.alpha,
                    explain.css_lower_bound, explain.live_groups,
                    explain.live_mass);
      out += buffer;
      return out;
    case PruneStage::kNone:
      break;
  }
  std::snprintf(
      buffer, sizeof(buffer),
      "%s simp=%.6g %s alpha=%.6g (css_lb=%d, ub_simp=%.6g, worlds=%lld, "
      "ged_calls=%lld, best_ged=%d%s%s)",
      explain.accepted ? "ACCEPT" : "REJECT", explain.simp_probability,
      explain.accepted ? ">=" : "<", params.alpha, explain.css_lower_bound,
      explain.simp_upper_bound,
      static_cast<long long>(explain.worlds_enumerated),
      static_cast<long long>(explain.ged_calls), explain.best_world_ged,
      explain.early_accept ? ", early-accept" : "",
      explain.early_reject ? ", early-reject" : "");
  out += buffer;
  return out;
}

std::string FormatExplains(const JoinResult& result,
                           const SimJParams& params) {
  std::string out;
  for (const PairExplain& explain : result.explains) {
    out += FormatExplain(explain, params);
    out += '\n';
  }
  return out;
}

namespace {

void SortExplains(std::vector<PairExplain>* explains) {
  std::sort(explains->begin(), explains->end(),
            [](const PairExplain& a, const PairExplain& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

// Slow-pair watchdog: logs a pair whose evaluation blew the budget, with
// its full explain record (the record is captured opportunistically for
// every pair while the watchdog is armed — recording is write-only, so
// results stay byte-identical). Called from workers; the log sink
// serializes concurrent writers.
void LogSlowPair(double elapsed_ms, const SimJParams& params,
                 PairExplain* explain, int q_index, int g_index) {
  explain->q_index = q_index;
  explain->g_index = g_index;
  JoinMetrics::Get().slow_pairs.Increment();
  SIMJ_LOG(WARN) << "slow pair: " << elapsed_ms << " ms (budget "
                 << params.slow_pair_log_ms << " ms) "
                 << FormatExplain(*explain, params);
}

// Per-pair execution shared by the serial loop, the thread-pool workers,
// and the shard-list entry point (EvaluatePairList): heartbeat, evaluate,
// watchdog epilogue, explain capture. Gates are captured once at
// construction so the per-pair path never re-reads tracker atomics.
struct PairEvaluator {
  const std::vector<LabeledGraph>& d;
  const std::vector<UncertainGraph>& u;
  const SimJParams& params;
  const graph::LabelDictionary& dict;
  JoinProgress& progress;
  bool explain_on;
  bool watchdog_on;
  bool stall_on;
  bool heartbeats_on;
  int64_t progress_every;

  PairEvaluator(const std::vector<LabeledGraph>& d_in,
                const std::vector<UncertainGraph>& u_in,
                const SimJParams& params_in,
                const graph::LabelDictionary& dict_in, bool heartbeats)
      : d(d_in),
        u(u_in),
        params(params_in),
        dict(dict_in),
        progress(JoinProgress::Global()),
        explain_on(params_in.explain.enabled),
        watchdog_on(params_in.slow_pair_log_ms > 0.0),
        stall_on(params_in.stall_warn_ms > 0.0),
        heartbeats_on(heartbeats),
        progress_every(params_in.progress_every) {}

  void Evaluate(int worker, int qi, int gi, JoinStats* stats,
                std::vector<MatchedPair>* pairs_out,
                std::vector<PairExplain>* explains_out) const {
    MatchedPair pair;
    PairExplain explain;
    const bool sampled = explain_on && params.explain.ShouldExplain(qi, gi);
    PairExplain* explain_slot =
        sampled || watchdog_on || stall_on ? &explain : nullptr;
    if (heartbeats_on) progress.Heartbeat(worker, qi, gi);
    WallTimer pair_timer;
    if (EvaluatePair(d[qi], u[gi], params, dict, stats, &pair,
                     explain_slot)) {
      pair.q_index = qi;
      pair.g_index = gi;
      pairs_out->push_back(std::move(pair));
    }
    // Epilogue: logging only — results, stats and explain output are
    // byte-identical whether any of it fires.
    if (watchdog_on) {
      double elapsed_ms = pair_timer.ElapsedMillis();
      if (elapsed_ms > params.slow_pair_log_ms) {
        LogSlowPair(elapsed_ms, params, &explain, qi, gi);
      }
    }
    if (stall_on && progress.ConsumeStallFlag(worker)) {
      explain.q_index = qi;
      explain.g_index = gi;
      SIMJ_LOG(WARN) << "stalled pair completed after "
                     << pair_timer.ElapsedMillis() << " ms: "
                     << FormatExplain(explain, params);
    }
    if (heartbeats_on) progress.PairDone(worker);
    if (progress_every > 0) progress.NotePairCompleted(progress_every);
    if (sampled) {
      explain.q_index = qi;
      explain.g_index = gi;
      explains_out->push_back(std::move(explain));
    }
  }
};

}  // namespace

void EvaluatePairList(const std::vector<LabeledGraph>& d,
                      const std::vector<UncertainGraph>& u,
                      const SimJParams& params,
                      const graph::LabelDictionary& dict,
                      const std::vector<std::pair<int, int>>& pairs,
                      int worker, JoinResult* result) {
  PairEvaluator evaluator(d, u, params, dict,
                          JoinProgress::Global().heartbeats_armed());
  for (const auto& [qi, gi] : pairs) {
    evaluator.Evaluate(worker, qi, gi, &result->stats, &result->pairs,
                       &result->explains);
  }
}

void JoinPairs(const std::vector<LabeledGraph>& d,
               const std::vector<UncertainGraph>& u, const SimJParams& params,
               const graph::LabelDictionary& dict, int64_t num_pairs,
               const std::function<std::pair<int, int>(int64_t)>& pair_at,
               JoinResult* result) {
  const bool stall_on = params.stall_warn_ms > 0.0;
  JoinProgress& progress = JoinProgress::Global();
  // Sticky per-join gates: captured once here so the per-pair path never
  // reads the tracker's atomics.
  const bool heartbeats_on = stall_on || progress.heartbeats_requested();
  const int planned_workers =
      params.num_threads == 1 ? 1 : ResolveThreadCount(params.num_threads);
  progress.BeginJoin(num_pairs, planned_workers, heartbeats_on);

  // Stall watchdog: a monitor thread samples the heartbeats and warns about
  // any worker stuck inside one pair. It only ever reads tracker state —
  // never join state — so results are unaffected.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor;
  if (stall_on) {
    monitor = std::thread([&progress, &monitor_stop, &params] {
      trace::SetThisThreadName("stall-monitor");
      const auto poll = std::chrono::duration<double, std::milli>(
          std::clamp(params.stall_warn_ms / 4.0, 1.0, 200.0));
      auto report = [&] {
        for (const StallEvent& event :
             progress.CheckStalls(params.stall_warn_ms)) {
          // Degrades /healthz until the next join begins cleanly
          // (JoinProgress::BeginJoin clears the component).
          health::SetUnhealthy("stall_watchdog",
                               "worker " + std::to_string(event.worker) +
                                   " stalled for " +
                                   std::to_string(event.stalled_ms) + " ms");
          SIMJ_LOG(WARN) << "stalled worker " << event.worker << ": pair <q="
                         << event.q_index << ",g=" << event.g_index
                         << "> running for " << event.stalled_ms
                         << " ms (budget " << params.stall_warn_ms << " ms)";
        }
      };
      while (!monitor_stop.load(std::memory_order_acquire)) {
        report();
        std::this_thread::sleep_for(poll);
      }
      report();  // final sweep: catches a stall between the last poll and exit
    });
  }

  const PairEvaluator evaluator(d, u, params, dict, heartbeats_on);

  if (params.num_threads == 1) {
    // Legacy serial path: accumulate directly into result->stats.
    for (int64_t p = 0; p < num_pairs; ++p) {
      auto [qi, gi] = pair_at(p);
      evaluator.Evaluate(0, qi, gi, &result->stats, &result->pairs,
                         &result->explains);
    }
  } else {
    // Workers may only read the dictionary (EvaluatePair never interns, but
    // the freeze makes that a hard guarantee rather than a convention).
    dict.Freeze();
    int workers = ResolveThreadCount(params.num_threads);
    metrics::Registry::Global()
        .GetGauge("simj_join_workers")
        .Set(static_cast<double>(workers));
    std::vector<JoinStats> worker_stats(workers);
    std::vector<std::vector<MatchedPair>> worker_pairs(workers);
    std::vector<std::vector<PairExplain>> worker_explains(workers);
    ParallelFor(params.num_threads, num_pairs, [&](int w, int64_t p) {
      auto [qi, gi] = pair_at(p);
      evaluator.Evaluate(w, qi, gi, &worker_stats[w], &worker_pairs[w],
                         &worker_explains[w]);
    });
    for (int w = 0; w < workers; ++w) {
      MergeJoinStats(worker_stats[w], &result->stats);
      result->pairs.insert(result->pairs.end(),
                           std::make_move_iterator(worker_pairs[w].begin()),
                           std::make_move_iterator(worker_pairs[w].end()));
      result->explains.insert(
          result->explains.end(),
          std::make_move_iterator(worker_explains[w].begin()),
          std::make_move_iterator(worker_explains[w].end()));
    }
  }
  if (monitor.joinable()) {
    monitor_stop.store(true, std::memory_order_release);
    monitor.join();
  }
  progress.EndJoin();
  // Debug-mode join postcondition: every pair was either pruned by exactly
  // one stage or verified, never both — a pair that was pruned and then
  // re-verified (or double-counted by a worker) breaks this identity.
  SIMJ_DCHECK_EQ(result->stats.total_pairs,
                 result->stats.pruned_structural +
                     result->stats.pruned_probabilistic +
                     result->stats.candidates);
  SIMJ_DCHECK_LE(result->stats.results, result->stats.candidates);
  // Memory observability: one high-water update and one /proc read per
  // join (never per pair).
  JoinMetrics::Get().candidate_set_peak.UpdateMax(
      static_cast<double>(result->stats.candidates));
  mem::SampleRssToMetrics();
  // Canonical output order: pair evaluation is deterministic per pair, so
  // after this sort the result is identical at every thread count.
  std::sort(result->pairs.begin(), result->pairs.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
  SortExplains(&result->explains);
}

JoinResult SimJoin(const std::vector<LabeledGraph>& d,
                   const std::vector<UncertainGraph>& u,
                   const SimJParams& params,
                   const graph::LabelDictionary& dict) {
  JoinResult result;
  WallTimer wall;
  trace::ScopedSpan span("simjoin", "join");
#ifdef SIMJ_DEBUG_CHECKS
  // Debug-mode boundary validation: every input graph satisfies its model
  // invariants (Def. 2/4) before any filter sees it.
  for (const LabeledGraph& q : d) SIMJ_CHECK_OK(q.Validate(dict));
  for (const UncertainGraph& g : u) SIMJ_CHECK_OK(g.Validate(dict));
#endif
  const int64_t num_u = static_cast<int64_t>(u.size());
  const int64_t num_pairs = static_cast<int64_t>(d.size()) * num_u;
  JoinPairs(d, u, params, dict, num_pairs,
            [num_u](int64_t p) {
              return std::pair<int, int>{static_cast<int>(p / num_u),
                                         static_cast<int>(p % num_u)};
            },
            &result);
  result.stats.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace simj::core
