#include "core/join.h"

#include <algorithm>
#include <iterator>

#include "ged/lower_bounds.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::UncertainGraph;

}  // namespace

void MergeJoinStats(const JoinStats& from, JoinStats* into) {
  into->total_pairs += from.total_pairs;
  into->pruned_structural += from.pruned_structural;
  into->pruned_probabilistic += from.pruned_probabilistic;
  into->candidates += from.candidates;
  into->results += from.results;
  into->verify.worlds_enumerated += from.verify.worlds_enumerated;
  into->verify.worlds_pruned_by_bound += from.verify.worlds_pruned_by_bound;
  into->verify.worlds_accepted_by_upper_bound +=
      from.verify.worlds_accepted_by_upper_bound;
  into->verify.ged_calls += from.verify.ged_calls;
  into->verify.ged_aborted += from.verify.ged_aborted;
  into->pruning_seconds += from.pruning_seconds;
  into->verification_seconds += from.verification_seconds;
}

bool EvaluatePair(const LabeledGraph& q, const UncertainGraph& g,
                  const SimJParams& params,
                  const graph::LabelDictionary& dict, JoinStats* stats,
                  MatchedPair* pair) {
  ++stats->total_pairs;
  WallTimer timer;

  // --- Pruning phase ---
  if (params.structural_pruning) {
    if (ged::CssLowerBoundUncertain(q, g, dict) > params.tau) {
      ++stats->pruned_structural;
      stats->pruning_seconds += timer.ElapsedSeconds();
      return false;
    }
  }

  GroupingResult grouping;
  bool grouped = false;
  if (params.probabilistic_pruning) {
    GroupingOptions group_options;
    group_options.group_count = params.group_count;
    group_options.heuristic = params.split_heuristic;
    grouping = PartitionPossibleWorlds(q, g, params.tau, dict, group_options);
    grouped = true;
    if (grouping.simp_upper_bound < params.alpha - kSimPEpsilon) {
      ++stats->pruned_probabilistic;
      stats->pruning_seconds += timer.ElapsedSeconds();
      return false;
    }
  }
  stats->pruning_seconds += timer.ElapsedSeconds();

  // --- Refinement phase ---
  timer.Restart();
  ++stats->candidates;

  std::vector<UncertainGraph> groups;
  double live_mass = 0.0;
  if (grouped) {
    // Heavier groups first: they decide more of the mass, so the
    // verification early-exits trigger sooner.
    std::sort(grouping.live_groups.begin(), grouping.live_groups.end(),
              [](const ScoredGroup& a, const ScoredGroup& b) {
                return a.mass > b.mass;
              });
    groups.reserve(grouping.live_groups.size());
    for (ScoredGroup& group : grouping.live_groups) {
      groups.push_back(std::move(group.graph));
    }
    live_mass = grouping.live_mass;
  } else {
    groups.push_back(g);
    live_mass = g.TotalMass();
  }

  SimPResult simp;
  if (params.early_exit_verification) {
    simp = VerifySimP(q, groups, live_mass, params.tau, params.alpha, dict,
                      params.ged_options, &stats->verify);
  } else {
    for (const UncertainGraph& group : groups) {
      SimPResult partial = ComputeSimP(q, group, params.tau, dict,
                                       params.ged_options, &stats->verify);
      simp.probability += partial.probability;
      if (partial.best_world_prob > simp.best_world_prob) {
        simp.best_world_prob = partial.best_world_prob;
        simp.best_world_ged = partial.best_world_ged;
        simp.best_mapping = partial.best_mapping;
      }
    }
  }
  stats->verification_seconds += timer.ElapsedSeconds();

  if (!simp.early_accept && simp.probability < params.alpha - kSimPEpsilon) {
    return false;
  }
  ++stats->results;
  if (pair != nullptr) {
    pair->similarity_probability = simp.probability;
    pair->mapping = simp.best_mapping;
    pair->best_world_ged = simp.best_world_ged;
  }
  return true;
}

void JoinPairs(const std::vector<LabeledGraph>& d,
               const std::vector<UncertainGraph>& u, const SimJParams& params,
               const graph::LabelDictionary& dict, int64_t num_pairs,
               const std::function<std::pair<int, int>(int64_t)>& pair_at,
               JoinResult* result) {
  if (params.num_threads == 1) {
    // Legacy serial path: accumulate directly into result->stats.
    for (int64_t p = 0; p < num_pairs; ++p) {
      auto [qi, gi] = pair_at(p);
      MatchedPair pair;
      if (EvaluatePair(d[qi], u[gi], params, dict, &result->stats, &pair)) {
        pair.q_index = qi;
        pair.g_index = gi;
        result->pairs.push_back(std::move(pair));
      }
    }
  } else {
    // Workers may only read the dictionary (EvaluatePair never interns, but
    // the freeze makes that a hard guarantee rather than a convention).
    dict.Freeze();
    int workers = ResolveThreadCount(params.num_threads);
    std::vector<JoinStats> worker_stats(workers);
    std::vector<std::vector<MatchedPair>> worker_pairs(workers);
    ParallelFor(params.num_threads, num_pairs, [&](int w, int64_t p) {
      auto [qi, gi] = pair_at(p);
      MatchedPair pair;
      if (EvaluatePair(d[qi], u[gi], params, dict, &worker_stats[w], &pair)) {
        pair.q_index = qi;
        pair.g_index = gi;
        worker_pairs[w].push_back(std::move(pair));
      }
    });
    for (int w = 0; w < workers; ++w) {
      MergeJoinStats(worker_stats[w], &result->stats);
      result->pairs.insert(result->pairs.end(),
                           std::make_move_iterator(worker_pairs[w].begin()),
                           std::make_move_iterator(worker_pairs[w].end()));
    }
  }
  // Canonical output order: pair evaluation is deterministic per pair, so
  // after this sort the result is identical at every thread count.
  std::sort(result->pairs.begin(), result->pairs.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

JoinResult SimJoin(const std::vector<LabeledGraph>& d,
                   const std::vector<UncertainGraph>& u,
                   const SimJParams& params,
                   const graph::LabelDictionary& dict) {
  JoinResult result;
  const int64_t num_u = static_cast<int64_t>(u.size());
  const int64_t num_pairs = static_cast<int64_t>(d.size()) * num_u;
  JoinPairs(d, u, params, dict, num_pairs,
            [num_u](int64_t p) {
              return std::pair<int, int>{static_cast<int>(p / num_u),
                                         static_cast<int>(p % num_u)};
            },
            &result);
  return result;
}

}  // namespace simj::core
