#include "core/join.h"

#include <algorithm>

#include "ged/lower_bounds.h"
#include "util/timer.h"

namespace simj::core {

namespace {

using graph::LabeledGraph;
using graph::UncertainGraph;

}  // namespace

bool EvaluatePair(const LabeledGraph& q, const UncertainGraph& g,
                  const SimJParams& params,
                  const graph::LabelDictionary& dict, JoinStats* stats,
                  MatchedPair* pair) {
  ++stats->total_pairs;
  WallTimer timer;

  // --- Pruning phase ---
  if (params.structural_pruning) {
    if (ged::CssLowerBoundUncertain(q, g, dict) > params.tau) {
      ++stats->pruned_structural;
      stats->pruning_seconds += timer.ElapsedSeconds();
      return false;
    }
  }

  GroupingResult grouping;
  bool grouped = false;
  if (params.probabilistic_pruning) {
    GroupingOptions group_options;
    group_options.group_count = params.group_count;
    group_options.heuristic = params.split_heuristic;
    grouping = PartitionPossibleWorlds(q, g, params.tau, dict, group_options);
    grouped = true;
    if (grouping.simp_upper_bound < params.alpha - kSimPEpsilon) {
      ++stats->pruned_probabilistic;
      stats->pruning_seconds += timer.ElapsedSeconds();
      return false;
    }
  }
  stats->pruning_seconds += timer.ElapsedSeconds();

  // --- Refinement phase ---
  timer.Restart();
  ++stats->candidates;

  std::vector<UncertainGraph> groups;
  double live_mass = 0.0;
  if (grouped) {
    // Heavier groups first: they decide more of the mass, so the
    // verification early-exits trigger sooner.
    std::sort(grouping.live_groups.begin(), grouping.live_groups.end(),
              [](const ScoredGroup& a, const ScoredGroup& b) {
                return a.mass > b.mass;
              });
    groups.reserve(grouping.live_groups.size());
    for (ScoredGroup& group : grouping.live_groups) {
      groups.push_back(std::move(group.graph));
    }
    live_mass = grouping.live_mass;
  } else {
    groups.push_back(g);
    live_mass = g.TotalMass();
  }

  SimPResult simp;
  if (params.early_exit_verification) {
    simp = VerifySimP(q, groups, live_mass, params.tau, params.alpha, dict,
                      params.ged_options, &stats->verify);
  } else {
    for (const UncertainGraph& group : groups) {
      SimPResult partial = ComputeSimP(q, group, params.tau, dict,
                                       params.ged_options, &stats->verify);
      simp.probability += partial.probability;
      if (partial.best_world_prob > simp.best_world_prob) {
        simp.best_world_prob = partial.best_world_prob;
        simp.best_world_ged = partial.best_world_ged;
        simp.best_mapping = partial.best_mapping;
      }
    }
  }
  stats->verification_seconds += timer.ElapsedSeconds();

  if (!simp.early_accept && simp.probability < params.alpha - kSimPEpsilon) {
    return false;
  }
  ++stats->results;
  if (pair != nullptr) {
    pair->similarity_probability = simp.probability;
    pair->mapping = simp.best_mapping;
    pair->best_world_ged = simp.best_world_ged;
  }
  return true;
}

JoinResult SimJoin(const std::vector<LabeledGraph>& d,
                   const std::vector<UncertainGraph>& u,
                   const SimJParams& params,
                   const graph::LabelDictionary& dict) {
  JoinResult result;
  for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
    for (int gi = 0; gi < static_cast<int>(u.size()); ++gi) {
      MatchedPair pair;
      if (EvaluatePair(d[qi], u[gi], params, dict, &result.stats, &pair)) {
        pair.q_index = qi;
        pair.g_index = gi;
        result.pairs.push_back(std::move(pair));
      }
    }
  }
  return result;
}

}  // namespace simj::core
