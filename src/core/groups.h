// Cost-based possible-world grouping (paper Section 6.2, Algorithm 2).
//
// An uncertain graph's possible worlds are divided into disjoint groups by
// restricting the label alternatives of selected vertices. Each group gets
// its own CSS lower bound (fewer labels => smaller bipartite matching =>
// tighter bound) and its own Markov upper bound; groups whose lower bound
// exceeds tau are discarded entirely, and the remaining upper bounds are
// summed for probabilistic pruning.
//
// The partitioner starts from one group and repeatedly splits the group
// with the weakest bound. Vertex selection follows the paper's two
// principles (highest uncertain-label mass; most labels); the candidate
// splits are scored with the cost model
//     min sum { ub_SimP(q, PWG_i) : lb_gedCSS(q, PWG_i) <= tau }
// and the cheapest split wins.

#ifndef SIMJ_CORE_GROUPS_H_
#define SIMJ_CORE_GROUPS_H_

#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::core {

// Which of the Section 6.2 vertex-selection principles drives a split.
enum class SplitHeuristic {
  kCostModel,  // propose both candidates, keep the cost-model winner
  kMassOnly,   // always split the vertex with the largest uncertain mass
  kCountOnly,  // always split the vertex with the most candidate labels
};

struct GroupingOptions {
  // Target number of groups (GN in the paper's Fig. 13). 1 disables the
  // optimization.
  int group_count = 1;
  SplitHeuristic heuristic = SplitHeuristic::kCostModel;
};

// One possible-world group plus its cached bounds against a query.
struct ScoredGroup {
  graph::UncertainGraph graph;
  int lower_bound = 0;      // CSS bound, valid for all worlds in the group
  double upper_bound = 0.0; // Markov bound on the group's SimP contribution
  double mass = 0.0;
};

struct GroupingResult {
  // Groups that survived lb <= tau, ready for verification.
  std::vector<ScoredGroup> live_groups;
  // Sum of upper bounds over live groups: a valid upper bound on
  // SimP_tau(q, g) used for probabilistic pruning.
  double simp_upper_bound = 0.0;
  // Mass still in play (sum of live group masses).
  double live_mass = 0.0;
};

// Partitions g into at most options.group_count groups against query q and
// scores them. With group_count == 1 this reduces to the plain Thm. 3 +
// Thm. 4 bounds.
GroupingResult PartitionPossibleWorlds(const graph::LabeledGraph& q,
                                       const graph::UncertainGraph& g,
                                       int tau,
                                       const graph::LabelDictionary& dict,
                                       const GroupingOptions& options);

}  // namespace simj::core

#endif  // SIMJ_CORE_GROUPS_H_
