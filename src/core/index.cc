#include "core/index.h"

#include <algorithm>
#include <cstdlib>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simj::core {

CertainGraphIndex::CertainGraphIndex(
    const std::vector<graph::LabeledGraph>* d)
    : d_(d), num_graphs_(static_cast<int64_t>(d->size())) {
  for (int i = 0; i < static_cast<int>(d->size()); ++i) {
    const graph::LabeledGraph& g = (*d)[i];
    buckets_[{g.num_vertices(), g.num_edges()}].push_back(i);
  }
}

bool CertainGraphIndex::SignatureSurvives(int vertices, int edges,
                                          const graph::UncertainGraph& g,
                                          int tau) {
  const int dv = std::abs(vertices - g.num_vertices());
  const int de = std::abs(edges - g.num_edges());
  return dv + de <= tau;
}

std::vector<int> CertainGraphIndex::Candidates(
    const graph::UncertainGraph& g, int tau) const {
  static metrics::Histogram& probe_seconds =
      metrics::Registry::Global().GetHistogram("simj_index_probe_seconds");
  static metrics::Counter& probes =
      metrics::Registry::Global().GetCounter("simj_index_probes_total");
  metrics::ScopedLatency latency(probe_seconds);
  trace::ScopedSpan span("index_probe", "index");
  probes.Increment();
  std::vector<int> out;
  const int v = g.num_vertices();
  const int e = g.num_edges();
  // Buckets are sorted by (|V|, |E|); scan the |V| window and filter on
  // the combined count bound.
  auto begin = buckets_.lower_bound({v - tau, 0});
  for (auto it = begin; it != buckets_.end(); ++it) {
    int dv = std::abs(it->first.first - v);
    if (it->first.first > v + tau) break;
    int de = std::abs(it->first.second - e);
    if (dv + de > tau) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

JoinResult IndexedSimJoin(const std::vector<graph::LabeledGraph>& d,
                          const std::vector<graph::UncertainGraph>& u,
                          const SimJParams& params,
                          const graph::LabelDictionary& dict) {
  static metrics::Counter& skipped_total =
      metrics::Registry::Global().GetCounter("simj_index_skipped_pairs_total");
  WallTimer wall;
  trace::ScopedSpan join_span("indexed_simjoin", "join");
  CertainGraphIndex index(&d);
  JoinResult result;
  // Materialize the surviving pairs up front (the index probe is cheap and
  // serial), then hand the skewed refinement work to the shared engine,
  // which shards it across the configured workers.
  std::vector<std::pair<int, int>> pairs;
  {
    trace::ScopedSpan span("candidate_generation", "index");
    for (int gi = 0; gi < static_cast<int>(u.size()); ++gi) {
      std::vector<int> candidates = index.Candidates(u[gi], params.tau);
      // Pairs skipped by the index never reach EvaluatePair; account for
      // them as structurally pruned.
      int64_t skipped = static_cast<int64_t>(d.size()) -
                        static_cast<int64_t>(candidates.size());
      result.stats.total_pairs += skipped;
      result.stats.pruned_structural += skipped;
      skipped_total.Add(skipped);
      if (params.explain.enabled) {
        // Explain the index-skipped pairs too: walk D against the sorted
        // candidate list and record the gaps.
        size_t next = 0;
        for (int qi = 0; qi < static_cast<int>(d.size()); ++qi) {
          if (next < candidates.size() && candidates[next] == qi) {
            ++next;
            continue;
          }
          if (!params.explain.ShouldExplain(qi, gi)) continue;
          PairExplain explain;
          explain.q_index = qi;
          explain.g_index = gi;
          explain.pruned_by = PruneStage::kIndexCount;
          result.explains.push_back(std::move(explain));
        }
      }
      for (int qi : candidates) pairs.emplace_back(qi, gi);
    }
  }
  JoinPairs(d, u, params, dict, static_cast<int64_t>(pairs.size()),
            [&pairs](int64_t p) { return pairs[p]; }, &result);
  result.stats.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace simj::core
