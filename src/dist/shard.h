// Shard planning for the distributed join (DESIGN.md §9).
//
// The candidate space |D| x |U| is partitioned along the size-signature
// buckets of CertainGraphIndex: every shard holds pairs whose certain
// graphs share one (|V|, |E|) signature, so a shard probes a contiguous
// slice of the index and its cost profile is homogeneous. Buckets larger
// than `max_pairs_per_shard` are split into consecutive chunks so the
// coordinator has enough shards to steal.
//
// With `use_index` on, bucket/graph combinations failing the count lower
// bound are dropped at plan time and accounted exactly as IndexedSimJoin
// accounts them (stats.total_pairs and stats.pruned_structural grow by the
// skipped count; sampled explain records carry PruneStage::kIndexCount) —
// the merged distributed result is byte-identical to IndexedSimJoin. With
// `use_index` off every pair is planned and the merged result is
// byte-identical to SimJoin.

#ifndef SIMJ_DIST_SHARD_H_
#define SIMJ_DIST_SHARD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/join.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::dist {

struct ShardPlanOptions {
  // Upper bound on pairs per shard; buckets above it are split. Must be
  // >= 1 (checked).
  int max_pairs_per_shard = 64;
  // Apply the signature-index count bound at plan time (IndexedSimJoin
  // semantics). Off = plan the full cross product (SimJoin semantics).
  bool use_index = true;
};

struct Shard {
  int shard_id = -1;
  // The (|V|, |E|) signature bucket this shard was cut from.
  int vertices = 0;
  int edges = 0;
  // (q_index, g_index) candidate pairs, in deterministic plan order.
  std::vector<std::pair<int, int>> pairs;
};

struct ShardPlan {
  std::vector<Shard> shards;
  // Sum of shard sizes (pairs that will reach EvaluatePair).
  int64_t planned_pairs = 0;
  // Plan-time accounting for pairs the index skipped, mirroring
  // IndexedSimJoin: counters to fold into the merged JoinStats and the
  // sampled explain records for skipped pairs. Both empty when
  // `use_index` is off.
  core::JoinStats pre_stats;
  std::vector<core::PairExplain> pre_explains;
};

// Deterministic: shard ids, shard contents, and plan order depend only on
// (d, u, params.tau, params.explain, options) — never on thread timing.
[[nodiscard]] ShardPlan PlanShards(const std::vector<graph::LabeledGraph>& d,
                                   const std::vector<graph::UncertainGraph>& u,
                                   const core::SimJParams& params,
                                   const ShardPlanOptions& options);

}  // namespace simj::dist

#endif  // SIMJ_DIST_SHARD_H_
