#include "dist/worker.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "core/join.h"
#include "util/check.h"
#include "util/log.h"
#include "util/subprocess.h"

namespace simj::dist {

const char* TransportName(Transport transport) {
  switch (transport) {
    case Transport::kThread:
      return "thread";
    case Transport::kProcess:
      return "process";
  }
  return "unknown";
}

namespace {

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// ---------------------------------------------------------------------------
// Wire codec (DESIGN.md §9). Fixed-width little-endian scalars appended to a
// std::string; the reader is bounds-checked and reports corruption through
// ok() instead of crashing on a torn frame.

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    I32(static_cast<int32_t>(s.size()));
    buf_.append(s);
  }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    // Little-endian hosts only (the child is a fork of this very process,
    // so parent and child always agree on representation).
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const int32_t n = I32();
    if (!ok_ || n < 0 || buf_.size() - pos_ < static_cast<size_t>(n)) {
      ok_ = false;
      return std::string();
    }
    std::string s = buf_.substr(pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == buf_.size(); }

 private:
  void Raw(void* p, size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Request: shard id + fault to honor + trace context + the pair list.
std::string EncodeRequest(const Shard& shard, const FaultSpec& fault,
                          const SpanContext& span_ctx) {
  ByteWriter w;
  w.I32(shard.shard_id);
  w.F64(fault.delay_ms);
  w.I32(fault.die_after_pairs);
  w.U8(span_ctx.collect ? 1 : 0);
  w.U64(span_ctx.trace_id);
  w.U64(span_ctx.parent_span_id);
  w.I32(span_ctx.profile_hz);
  w.I32(static_cast<int32_t>(shard.pairs.size()));
  for (const auto& [qi, gi] : shard.pairs) {
    w.I32(qi);
    w.I32(gi);
  }
  // Additive field, appended last so the frame prefix is unchanged (the
  // child is a fork of this binary: encoder and decoder change together).
  w.I64(span_ctx.heap_sample_bytes);
  return w.Take();
}

struct Request {
  int shard_id = -1;
  FaultSpec fault;
  SpanContext span_ctx;
  std::vector<std::pair<int, int>> pairs;
};

bool DecodeRequest(const std::string& frame, Request* out) {
  ByteReader r(frame);
  out->shard_id = r.I32();
  out->fault.delay_ms = r.F64();
  out->fault.die_after_pairs = r.I32();
  out->span_ctx.collect = r.U8() != 0;
  out->span_ctx.trace_id = r.U64();
  out->span_ctx.parent_span_id = r.U64();
  out->span_ctx.profile_hz = r.I32();
  const int32_t n = r.I32();
  if (!r.ok() || n < 0) return false;
  out->pairs.clear();
  out->pairs.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    const int32_t qi = r.I32();
    const int32_t gi = r.I32();
    out->pairs.emplace_back(qi, gi);
  }
  out->span_ctx.heap_sample_bytes = r.I64();
  return r.AtEnd();
}

std::string EncodeResult(const ShardResult& result) {
  ByteWriter w;
  w.I32(result.shard_id);
  const core::JoinStats& s = result.stats;
  w.I64(s.total_pairs);
  w.I64(s.pruned_structural);
  w.I64(s.pruned_probabilistic);
  w.I64(s.candidates);
  w.I64(s.results);
  w.I64(s.verify.worlds_enumerated);
  w.I64(s.verify.worlds_pruned_by_bound);
  w.I64(s.verify.worlds_accepted_by_upper_bound);
  w.I64(s.verify.ged_calls);
  w.I64(s.verify.ged_aborted);
  w.F64(s.pruning_cpu_seconds);
  w.F64(s.verification_cpu_seconds);
  w.I32(static_cast<int32_t>(result.pairs.size()));
  for (const core::MatchedPair& p : result.pairs) {
    w.I32(p.q_index);
    w.I32(p.g_index);
    w.F64(p.similarity_probability);
    w.I32(p.best_world_ged);
    w.I32(static_cast<int32_t>(p.mapping.size()));
    for (int m : p.mapping) w.I32(m);
  }
  w.I32(static_cast<int32_t>(result.explains.size()));
  for (const core::PairExplain& e : result.explains) {
    w.I32(e.q_index);
    w.I32(e.g_index);
    w.I32(static_cast<int32_t>(e.pruned_by));
    w.U8(e.accepted ? 1 : 0);
    w.I32(e.css_lower_bound);
    w.F64(e.simp_upper_bound);
    w.I32(e.live_groups);
    w.F64(e.live_mass);
    w.F64(e.simp_probability);
    w.U8(e.early_accept ? 1 : 0);
    w.U8(e.early_reject ? 1 : 0);
    w.I64(e.worlds_enumerated);
    w.I64(e.ged_calls);
    w.I32(e.best_world_ged);
  }
  // Span batch (empty unless the request asked to collect). tid/pid are
  // not shipped: the coordinator re-files shipped spans under the worker's
  // process lane.
  w.I32(static_cast<int32_t>(result.spans.size()));
  for (const trace::TraceEvent& span : result.spans) {
    w.Str(span.name);
    w.Str(span.category);
    w.F64(span.ts_us);
    w.F64(span.dur_us);
    w.U64(span.trace_id);
    w.U64(span.parent_span_id);
  }
  // Profile batch (empty unless the request carried profile_hz > 0):
  // already-symbolized folded stacks — the child's symbol addresses mean
  // nothing to the parent, so symbolization cannot be deferred across the
  // pipe.
  const prof::SampleBatch& batch = result.profile;
  w.I64(batch.samples);
  w.I64(batch.dropped);
  w.I64(batch.truncated);
  w.I32(static_cast<int32_t>(batch.stacks.size()));
  for (const prof::FoldedStack& stack : batch.stacks) {
    w.Str(stack.thread);
    w.I64(stack.count);
    w.I32(static_cast<int32_t>(stack.frames.size()));
    for (const std::string& frame : stack.frames) w.Str(frame);
  }
  // Heap batch (empty unless the request carried heap_sample_bytes > 0):
  // symbolized for the same reason as the profile batch, counters are
  // deltas since this worker's previous drain. Appended last (additive).
  const heapprof::HeapBatch& heap = result.heap;
  w.I64(heap.dropped);
  w.I64(heap.truncated);
  w.I32(static_cast<int32_t>(heap.stacks.size()));
  for (const heapprof::HeapFoldedStack& stack : heap.stacks) {
    w.Str(stack.thread);
    w.I64(stack.inuse_bytes);
    w.I64(stack.inuse_objects);
    w.I64(stack.alloc_bytes);
    w.I64(stack.alloc_objects);
    w.I32(static_cast<int32_t>(stack.frames.size()));
    for (const std::string& frame : stack.frames) w.Str(frame);
  }
  return w.Take();
}

StatusOr<ShardResult> DecodeResult(const std::string& frame) {
  ByteReader r(frame);
  ShardResult result;
  result.shard_id = r.I32();
  core::JoinStats& s = result.stats;
  s.total_pairs = r.I64();
  s.pruned_structural = r.I64();
  s.pruned_probabilistic = r.I64();
  s.candidates = r.I64();
  s.results = r.I64();
  s.verify.worlds_enumerated = r.I64();
  s.verify.worlds_pruned_by_bound = r.I64();
  s.verify.worlds_accepted_by_upper_bound = r.I64();
  s.verify.ged_calls = r.I64();
  s.verify.ged_aborted = r.I64();
  s.pruning_cpu_seconds = r.F64();
  s.verification_cpu_seconds = r.F64();
  const int32_t npairs = r.I32();
  if (!r.ok() || npairs < 0) {
    return InternalError("shard response corrupt (pair count)");
  }
  result.pairs.reserve(static_cast<size_t>(npairs));
  for (int32_t i = 0; i < npairs; ++i) {
    core::MatchedPair p;
    p.q_index = r.I32();
    p.g_index = r.I32();
    p.similarity_probability = r.F64();
    p.best_world_ged = r.I32();
    const int32_t maplen = r.I32();
    if (!r.ok() || maplen < 0) {
      return InternalError("shard response corrupt (mapping)");
    }
    p.mapping.reserve(static_cast<size_t>(maplen));
    for (int32_t m = 0; m < maplen; ++m) p.mapping.push_back(r.I32());
    result.pairs.push_back(std::move(p));
  }
  const int32_t nexplains = r.I32();
  if (!r.ok() || nexplains < 0) {
    return InternalError("shard response corrupt (explain count)");
  }
  result.explains.reserve(static_cast<size_t>(nexplains));
  for (int32_t i = 0; i < nexplains; ++i) {
    core::PairExplain e;
    e.q_index = r.I32();
    e.g_index = r.I32();
    e.pruned_by = static_cast<core::PruneStage>(r.I32());
    e.accepted = r.U8() != 0;
    e.css_lower_bound = r.I32();
    e.simp_upper_bound = r.F64();
    e.live_groups = r.I32();
    e.live_mass = r.F64();
    e.simp_probability = r.F64();
    e.early_accept = r.U8() != 0;
    e.early_reject = r.U8() != 0;
    e.worlds_enumerated = r.I64();
    e.ged_calls = r.I64();
    e.best_world_ged = r.I32();
    result.explains.push_back(std::move(e));
  }
  const int32_t nspans = r.I32();
  if (!r.ok() || nspans < 0) {
    return InternalError("shard response corrupt (span count)");
  }
  result.spans.reserve(static_cast<size_t>(nspans));
  for (int32_t i = 0; i < nspans; ++i) {
    trace::TraceEvent span;
    span.name = r.Str();
    span.category = r.Str();
    span.ts_us = r.F64();
    span.dur_us = r.F64();
    span.trace_id = r.U64();
    span.parent_span_id = r.U64();
    result.spans.push_back(std::move(span));
  }
  result.profile.samples = r.I64();
  result.profile.dropped = r.I64();
  result.profile.truncated = r.I64();
  const int32_t nstacks = r.I32();
  if (!r.ok() || nstacks < 0) {
    return InternalError("shard response corrupt (profile stack count)");
  }
  result.profile.stacks.reserve(static_cast<size_t>(nstacks));
  for (int32_t i = 0; i < nstacks; ++i) {
    prof::FoldedStack stack;
    stack.thread = r.Str();
    stack.count = r.I64();
    const int32_t nframes = r.I32();
    if (!r.ok() || nframes < 0) {
      return InternalError("shard response corrupt (profile frame count)");
    }
    stack.frames.reserve(static_cast<size_t>(nframes));
    for (int32_t f = 0; f < nframes; ++f) stack.frames.push_back(r.Str());
    result.profile.stacks.push_back(std::move(stack));
  }
  result.heap.dropped = r.I64();
  result.heap.truncated = r.I64();
  const int32_t nheap = r.I32();
  if (!r.ok() || nheap < 0) {
    return InternalError("shard response corrupt (heap stack count)");
  }
  result.heap.stacks.reserve(static_cast<size_t>(nheap));
  for (int32_t i = 0; i < nheap; ++i) {
    heapprof::HeapFoldedStack stack;
    stack.thread = r.Str();
    stack.inuse_bytes = r.I64();
    stack.inuse_objects = r.I64();
    stack.alloc_bytes = r.I64();
    stack.alloc_objects = r.I64();
    const int32_t nframes = r.I32();
    if (!r.ok() || nframes < 0) {
      return InternalError("shard response corrupt (heap frame count)");
    }
    stack.frames.reserve(static_cast<size_t>(nframes));
    for (int32_t f = 0; f < nframes; ++f) stack.frames.push_back(r.Str());
    result.heap.stacks.push_back(std::move(stack));
  }
  if (!r.AtEnd()) {
    return InternalError("shard response corrupt (trailing bytes)");
  }
  return result;
}

// Evaluates `pairs` into a ShardResult via the shared core evaluator.
ShardResult EvaluateShardPairs(const WorkerContext& ctx,
                               const core::SimJParams& params, int shard_id,
                               const std::vector<std::pair<int, int>>& pairs,
                               int worker_index) {
  core::JoinResult r;
  core::EvaluatePairList(*ctx.d, *ctx.u, params, *ctx.dict, pairs,
                         worker_index, &r);
  ShardResult out;
  out.shard_id = shard_id;
  out.stats = r.stats;
  out.pairs = std::move(r.pairs);
  out.explains = std::move(r.explains);
  return out;
}

// Stamps the attempt's trace context onto every captured span.
void TagSpans(std::vector<trace::TraceEvent>* spans,
              const SpanContext& span_ctx) {
  for (trace::TraceEvent& span : *spans) {
    span.trace_id = span_ctx.trace_id;
    span.parent_span_id = span_ctx.parent_span_id;
  }
}

// ---------------------------------------------------------------------------
// Thread transport.

class ThreadWorker final : public ShardWorker {
 public:
  ThreadWorker(const WorkerContext& ctx, int worker_index)
      : ctx_(ctx), worker_index_(worker_index) {}

  StatusOr<ShardResult> RunShard(const Shard& shard, const FaultSpec& fault,
                                 const SpanContext& span_ctx) override {
    trace::Tracer& tracer = trace::Tracer::Global();
    SleepMs(fault.delay_ms);
    if (fault.die_after_pairs >= 0) {
      // Die mid-shard: evaluate the prefix (its registry increments stand,
      // exactly as a crashed worker's side effects would), then abandon
      // the shard without returning the partial result.
      const size_t prefix = std::min(shard.pairs.size(),
                                     static_cast<size_t>(fault.die_after_pairs));
      const std::vector<std::pair<int, int>> partial(
          shard.pairs.begin(),
          shard.pairs.begin() + static_cast<long>(prefix));
      if (span_ctx.collect) tracer.BeginThreadCapture();
      (void)EvaluateShardPairs(ctx_, *ctx_.params, shard.shard_id, partial,
                               worker_index_);
      // A dying worker ships nothing: discard the partial capture, exactly
      // as the process transport's child dies without responding.
      if (span_ctx.collect) (void)tracer.EndThreadCapture();
      return InternalError("injected death: thread worker abandoned shard " +
                           std::to_string(shard.shard_id) + " after " +
                           std::to_string(prefix) + " pairs");
    }
    if (span_ctx.collect) tracer.BeginThreadCapture();
    ShardResult result = EvaluateShardPairs(ctx_, *ctx_.params, shard.shard_id,
                                            shard.pairs, worker_index_);
    if (span_ctx.collect) {
      result.spans = tracer.EndThreadCapture();
      TagSpans(&result.spans, span_ctx);
    }
    if (span_ctx.profile_hz > 0 && prof::ProfilingActive()) {
      // Ship this dispatch thread's samples so the thread transport files
      // them under "worker-N", symmetric with a forked child's section.
      result.profile = prof::DrainThisThreadBatch();
    }
    if (span_ctx.heap_sample_bytes > 0 && heapprof::HeapProfilingActive()) {
      // Likewise for heap entries: deltas since this thread's last drain.
      result.heap = heapprof::DrainThisThreadBatch();
    }
    return result;
  }

  Status Restart() override { return Status::Ok(); }
  bool counts_in_process() const override { return true; }
  Transport transport() const override { return Transport::kThread; }

 private:
  const WorkerContext ctx_;
  const int worker_index_;
};

// ---------------------------------------------------------------------------
// Process transport.

// Child-side serve loop: read a request frame, evaluate, respond; exit
// cleanly on EOF. An injected death _exit()s without responding, so the
// parent observes EOF mid-conversation. The child runs against its
// inherited memory snapshot with sanitized params: no logging, watchdogs,
// progress, or extra threads — it must never touch locks a parent thread
// might have held at fork time.
int ServeShards(const WorkerContext& ctx, int request_fd, int response_fd) {
  core::SimJParams params = *ctx.params;
  params.num_threads = 1;
  params.slow_pair_log_ms = 0.0;
  params.stall_warn_ms = 0.0;
  params.progress_every = 0;
  for (;;) {
    StatusOr<std::string> frame = subprocess::ReadFrame(request_fd);
    if (!frame.ok()) {
      // Clean EOF = coordinator shut us down; anything else is a torn pipe.
      return frame.status().code() == StatusCode::kNotFound ? 0 : 2;
    }
    Request request;
    if (!DecodeRequest(frame.value(), &request)) return 2;
    // The coordinator's capture cannot see this process: run our own
    // profiler at the requested frequency, arming on first sight (the
    // inherited parent state is stale post-fork; StartProfiling resets
    // it) and disarming when the coordinator's capture ends.
    if (request.span_ctx.profile_hz > 0 && !prof::ProfilingActive()) {
      prof::NoteThisThread("serve");
      Status armed = prof::StartProfiling(
          prof::ProfileOptions{request.span_ctx.profile_hz});
      if (!armed.ok()) {
        SIMJ_LOG(WARN) << "shard child profiler: " << armed.ToString();
      }
    } else if (request.span_ctx.profile_hz == 0 && prof::ProfilingActive()) {
      // The capture window closed; the final drain already shipped with the
      // last profiled response, so the residual profile is discardable.
      SIMJ_IGNORE_STATUS(prof::StopProfiling().status());
    }
    // Same arm/disarm contract for the heap capture. The atfork handler
    // cleared the parent's armed state in this child, so HeapProfilingActive
    // is false until we arm our own.
    if (request.span_ctx.heap_sample_bytes > 0 &&
        !heapprof::HeapProfilingActive()) {
      heapprof::NoteThisThread("serve");
      Status armed = heapprof::StartHeapProfiling(
          heapprof::HeapProfileOptions{request.span_ctx.heap_sample_bytes});
      if (!armed.ok()) {
        SIMJ_LOG(WARN) << "shard child heap profiler: " << armed.ToString();
      }
    } else if (request.span_ctx.heap_sample_bytes == 0 &&
               heapprof::HeapProfilingActive()) {
      SIMJ_IGNORE_STATUS(heapprof::StopHeapProfiling().status());
    }
    SleepMs(request.fault.delay_ms);
    if (request.fault.die_after_pairs >= 0) {
      const size_t prefix =
          std::min(request.pairs.size(),
                   static_cast<size_t>(request.fault.die_after_pairs));
      const std::vector<std::pair<int, int>> partial(
          request.pairs.begin(),
          request.pairs.begin() + static_cast<long>(prefix));
      (void)EvaluateShardPairs(ctx, params, request.shard_id, partial,
                               /*worker_index=*/0);
      return 3;  // _exit(3): died mid-shard without responding
    }
    // The capture works regardless of the inherited enabled_ snapshot (the
    // fork may land with tracing on or off in the parent); timestamps stay
    // on the parent's timeline because steady_clock is machine-wide and
    // epoch_ survives fork().
    if (request.span_ctx.collect) trace::Tracer::Global().BeginThreadCapture();
    ShardResult result = EvaluateShardPairs(
        ctx, params, request.shard_id, request.pairs, /*worker_index=*/0);
    if (request.span_ctx.collect) {
      result.spans = trace::Tracer::Global().EndThreadCapture();
      TagSpans(&result.spans, request.span_ctx);
    }
    if (request.span_ctx.profile_hz > 0 && prof::ProfilingActive()) {
      // Single-threaded serve loop, but drain every ring anyway so
      // nothing is stranded if the evaluator ever grows helper threads.
      result.profile = prof::DrainAllThreadsBatch();
    }
    if (request.span_ctx.heap_sample_bytes > 0 &&
        heapprof::HeapProfilingActive()) {
      result.heap = heapprof::DrainAllThreadsBatch();
    }
    Status status =
        subprocess::WriteFrame(response_fd, EncodeResult(result));
    if (!status.ok()) return 2;
  }
}

class ProcessWorker final : public ShardWorker {
 public:
  ProcessWorker(const WorkerContext& ctx, int worker_index)
      : ctx_(ctx), worker_index_(worker_index) {}

  Status SpawnChild() {
    const WorkerContext ctx = ctx_;
    StatusOr<subprocess::ChildProcess> child = subprocess::ChildProcess::Spawn(
        [ctx](int request_fd, int response_fd) {
          return ServeShards(ctx, request_fd, response_fd);
        });
    if (!child.ok()) return child.status();
    child_ = std::move(child).value();
    return Status::Ok();
  }

  StatusOr<ShardResult> RunShard(const Shard& shard, const FaultSpec& fault,
                                 const SpanContext& span_ctx) override {
    if (!child_.running()) {
      return FailedPreconditionError("process worker " +
                                     std::to_string(worker_index_) +
                                     " has no live child");
    }
    Status status = subprocess::WriteFrame(
        child_.request_fd(), EncodeRequest(shard, fault, span_ctx));
    if (!status.ok()) return status;
    StatusOr<std::string> response = subprocess::ReadFrame(child_.response_fd());
    if (!response.ok()) {
      // EOF here means the child died mid-shard (injected or real).
      return InternalError("process worker " + std::to_string(worker_index_) +
                           " died on shard " + std::to_string(shard.shard_id) +
                           ": " + response.status().message());
    }
    StatusOr<ShardResult> result = DecodeResult(response.value());
    if (result.ok() && result.value().shard_id != shard.shard_id) {
      return InternalError("shard response id mismatch: sent " +
                           std::to_string(shard.shard_id) + ", got " +
                           std::to_string(result.value().shard_id));
    }
    return result;
  }

  Status Restart() override {
    child_.Kill();
    (void)child_.Wait();
    return SpawnChild();
  }

  bool counts_in_process() const override { return false; }
  Transport transport() const override { return Transport::kProcess; }

 private:
  const WorkerContext ctx_;
  const int worker_index_;
  subprocess::ChildProcess child_;
};

}  // namespace

std::unique_ptr<ShardWorker> MakeThreadWorker(const WorkerContext& ctx,
                                              int worker_index) {
  SIMJ_CHECK(ctx.d != nullptr && ctx.u != nullptr && ctx.params != nullptr &&
             ctx.dict != nullptr);
  return std::make_unique<ThreadWorker>(ctx, worker_index);
}

StatusOr<std::unique_ptr<ShardWorker>> MakeProcessWorker(
    const WorkerContext& ctx, int worker_index) {
  SIMJ_CHECK(ctx.d != nullptr && ctx.u != nullptr && ctx.params != nullptr &&
             ctx.dict != nullptr);
  auto worker = std::make_unique<ProcessWorker>(ctx, worker_index);
  Status status = worker->SpawnChild();
  if (!status.ok()) return status;
  return std::unique_ptr<ShardWorker>(std::move(worker));
}

}  // namespace simj::dist
