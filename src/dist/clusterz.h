// /clusterz: live cluster introspection + the flight-recorder event
// vocabulary and its replay checker (DESIGN.md §10).
//
// The coordinator records every scheduling decision into the global
// util/flight_recorder ring using the event-type constants below, and
// while a sharded join runs it registers itself as the ClusterzSource so
// GET /clusterz renders live shard queue depths, per-worker heartbeat
// age/state/restart budget, steal/requeue totals, and the recent
// flight-recorder tail. The endpoint plugs into util/statusz through the
// process-global endpoint registry (util never links dist).
//
// ReplayFinalAssignment is the post-mortem contract: the recorded
// deal/dispatch/steal/requeue/complete/fallback events alone reconstruct
// the exact final shard-to-worker assignment by simulating the queues, and
// the simulation cross-checks every transition (a dispatch must pop the
// worker's own queue front, a steal the victim's back). Tests replay a
// faulted run's dump against DistStats::shard_completed_by.

#ifndef SIMJ_DIST_CLUSTERZ_H_
#define SIMJ_DIST_CLUSTERZ_H_

#include <string>
#include <vector>

#include "util/flight_recorder.h"
#include "util/status.h"

namespace simj::dist {

// Flight-recorder event types recorded by the coordinator.
inline constexpr const char* kEventDeal = "deal";          // initial round-robin deal
inline constexpr const char* kEventDispatch = "dispatch";  // own-queue front pop
inline constexpr const char* kEventSteal = "steal";        // victim's back pop (detail "victim=N")
inline constexpr const char* kEventComplete = "complete";  // shard finished on worker
inline constexpr const char* kEventDuplicate = "duplicate";  // completion discarded
inline constexpr const char* kEventRequeue = "requeue";    // failed execution, shard back on queue
inline constexpr const char* kEventRestart = "restart";    // worker restarted
inline constexpr const char* kEventWorkerDead = "worker_dead";  // restart budget exhausted
inline constexpr const char* kEventFault = "fault";        // injected fault observed
inline constexpr const char* kEventStall = "stall";        // watchdog flagged a worker
inline constexpr const char* kEventFallback = "fallback";  // shard ran inline on coordinator

// Live-state provider registered by the running coordinator. LiveJson()
// must return a complete JSON value and only read snapshot state (it is
// called from the statusz server thread).
class ClusterzSource {
 public:
  virtual ~ClusterzSource() = default;
  virtual std::string LiveJson() = 0;
};

// Installs (or, with nullptr, removes) the live source. The registry holds
// its internal mutex across the LiveJson() call, so the coordinator can
// safely unregister in its destructor.
void SetClusterzSource(ClusterzSource* source);

// The /clusterz response body:
//   {"active":bool,"coordinator":<LiveJson or null>,
//    "events_dropped":N,"recent_events":[...last 32 flight events...]}
[[nodiscard]] std::string ClusterzBody();

// Registers GET /clusterz with the statusz endpoint registry. Idempotent.
void RegisterClusterzEndpoint();

// Replays deal/dispatch/steal/requeue/complete/fallback events through a
// queue simulation and returns the final shard-to-worker assignment
// (worker index per shard; -1 = inline fallback). Fails on any transition
// the real coordinator could not have produced: popping the wrong queue
// end, completing a shard on a worker that was not running it, a shard
// left unfinished.
[[nodiscard]] StatusOr<std::vector<int>> ReplayFinalAssignment(
    const std::vector<flight::Event>& events, int num_shards);

}  // namespace simj::dist

#endif  // SIMJ_DIST_CLUSTERZ_H_
