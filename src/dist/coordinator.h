// Shard coordinator for the distributed join (DESIGN.md §9).
//
// The coordinator deals the planned shards round-robin onto per-worker
// queues, runs one dispatch loop per worker, and merges the per-shard
// results into a JoinResult that is byte-identical (pairs, mappings,
// counters — never wall/CPU timing) to SimJoin (use_index off) or
// IndexedSimJoin (use_index on), at any worker count, either transport,
// and under any fault schedule:
//
//   * work stealing — a worker whose own queue drains steals from the back
//     of the longest remaining queue, so stragglers shed load;
//   * requeue — a shard whose execution fails (dead child, injected fault)
//     goes back to the queues and the worker is restarted, up to
//     max_worker_restarts times before it is declared permanently dead;
//   * inline fallback — shards still unfinished after every worker died
//     run on the coordinator thread itself, so the join always converges;
//   * deterministic merge — per-shard stats fold in ascending shard_id
//     order and matched pairs / explain records are globally sorted by
//     (q_index, g_index), erasing scheduling nondeterminism.
//
// The stall watchdog (params.stall_warn_ms) and heartbeats work unchanged:
// the dispatch thread heartbeats the shard's first pair before handing it
// to the worker, so a stuck or slow worker ages a heartbeat the monitor
// thread can flag — regardless of transport.
//
// Cluster observability (DESIGN.md §10): while it runs, the coordinator
//   * records every scheduling decision (deal, dispatch, steal, requeue,
//     restart, complete, fault, stall, fallback) into the global
//     util/flight_recorder ring — DistStats::events carries the run's copy
//     and dist/clusterz.h's ReplayFinalAssignment can reconstruct the
//     final shard-to-worker assignment from it;
//   * when tracing is enabled, synthesizes one attempt span per shard
//     execution (including failed/requeued attempts) under the worker's
//     Chrome-trace process lane and merges the worker-captured spans
//     shipped back in ShardResult::spans, so one --trace_out file shows
//     the whole cluster timeline;
//   * folds each completed shard's counters into `worker="N"`-labeled
//     registry metrics (both transports; fallback shards get
//     worker="inline"), so per-label sums always equal the unsharded run's
//     totals — partial work by dying workers is deliberately excluded;
//   * serves live queue depths / worker states through GET /clusterz and
//     reports dead-worker and stall degradation to util/health (/healthz).
// All of it is observational: join results stay byte-identical with every
// sink on or off.

#ifndef SIMJ_DIST_COORDINATOR_H_
#define SIMJ_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/join.h"
#include "dist/shard.h"
#include "dist/worker.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/flight_recorder.h"

namespace simj::dist {

struct DistJoinParams {
  int num_workers = 2;
  Transport transport = Transport::kThread;
  // Shard planning (see ShardPlanOptions).
  int max_pairs_per_shard = 64;
  bool use_index = true;
  // Restarts allowed per worker before it is declared permanently dead.
  int max_worker_restarts = 4;
  // Simulator hook (tests only): decides the fault injected into one shard
  // execution. Called from dispatch threads; `attempt` counts executions of
  // that shard (0 = first) and `shard_pairs` is the shard's size (bounds
  // the injected death point). Null/empty = no faults.
  std::function<FaultSpec(int worker, int shard_id, int attempt,
                          int shard_pairs)>
      fault_hook;
};

// Per-worker accounting for the run, for the balance tests and statusz.
struct WorkerReport {
  int shards_completed = 0;
  int shards_failed = 0;  // executions that returned an error
  int steals = 0;         // shards taken from another worker's queue
  int restarts = 0;
  bool permanently_dead = false;
  // Wall time spent inside RunShard for shards this worker COMPLETED
  // (failed executions excluded — an abandoned shard's time is attributed
  // to nobody, like a crashed machine's).
  double busy_seconds = 0.0;
};

struct DistStats {
  int shards_planned = 0;
  int shards_requeued = 0;
  // Completions discarded because the shard was already done (defensive;
  // the current requeue-on-error-only policy never double-runs a shard to
  // completion, but the merge must stay correct if a future policy does).
  int duplicate_results_discarded = 0;
  // Shards the coordinator ran inline after every worker died.
  int fallback_shards = 0;
  // Stall observations the watchdog reported during the run.
  int stall_events = 0;
  std::vector<WorkerReport> workers;
  // The run's flight-recorder events (a copy of the global ring taken at
  // the end of the run; the coordinator clears the ring at run start).
  std::vector<flight::Event> events;
  // Final assignment: the worker index that produced each shard's merged
  // result (-1 = the coordinator's inline fallback).
  std::vector<int> shard_completed_by;
};

struct DistJoinResult {
  core::JoinResult join;
  DistStats dist;
};

// Plans, executes, and merges the full distributed join. Freezes `dict`
// for the duration (workers share it concurrently; process workers fork a
// frozen snapshot). params.num_threads is ignored — parallelism is
// dist_params.num_workers, each worker evaluating serially.
[[nodiscard]] DistJoinResult ShardedSimJoin(
    const std::vector<graph::LabeledGraph>& d,
    const std::vector<graph::UncertainGraph>& u,
    const core::SimJParams& params, const graph::LabelDictionary& dict,
    const DistJoinParams& dist_params);

}  // namespace simj::dist

#endif  // SIMJ_DIST_COORDINATOR_H_
