#include "dist/clusterz.h"

#include <cstdlib>
#include <deque>
#include <map>
#include <string>

#include "util/statusz.h"
#include "util/sync.h"

namespace simj::dist {

namespace {

struct SourceSlot {
  Mutex mu;
  ClusterzSource* source SIMJ_GUARDED_BY(mu) = nullptr;
};

SourceSlot& GlobalSource() {
  static SourceSlot* slot =
      new SourceSlot();  // simj-lint: allow(new) leaky singleton
  return *slot;
}

constexpr int kRecentEventTail = 32;

}  // namespace

void SetClusterzSource(ClusterzSource* source) {
  SourceSlot& slot = GlobalSource();
  MutexLock lock(slot.mu);
  slot.source = source;
}

std::string ClusterzBody() {
  std::string out = "{\"active\":";
  {
    // The mutex is held across LiveJson() so the coordinator can never be
    // destroyed mid-render (it unregisters under the same mutex first).
    SourceSlot& slot = GlobalSource();
    MutexLock lock(slot.mu);
    if (slot.source != nullptr) {
      out += "true,\"coordinator\":";
      out += slot.source->LiveJson();
    } else {
      out += "false,\"coordinator\":null";
    }
  }
  flight::FlightRecorder& recorder = flight::FlightRecorder::Global();
  std::vector<flight::Event> events = recorder.Events();
  if (static_cast<int>(events.size()) > kRecentEventTail) {
    events.erase(events.begin(),
                 events.end() - static_cast<long>(kRecentEventTail));
  }
  out += ",\"events_dropped\":";
  out += std::to_string(recorder.dropped());
  // Reuse the dump renderer for the tail, splicing out its object wrapper.
  std::string tail = flight::EventsJson(events, /*dropped=*/0);
  const size_t begin = tail.find("\"events\":");
  out += ",\"recent_events\":";
  out += tail.substr(begin + 9, tail.size() - (begin + 9) - 2);  // strip "}\n"
  out += "}\n";
  return out;
}

void RegisterClusterzEndpoint() {
  // The statusz server invokes this body through a std::function while
  // holding the endpoint registry mutex — an indirection the static
  // lock-order extractor cannot follow, so the edges are declared here:
  // simj-lock-order: EndpointRegistry::mu -> SourceSlot::mu
  // simj-lock-order: EndpointRegistry::mu -> FlightRecorder::mu_
  statusz::RegisterEndpoint(
      {"/clusterz", "application/json", [] { return ClusterzBody(); }});
}

StatusOr<std::vector<int>> ReplayFinalAssignment(
    const std::vector<flight::Event>& events, int num_shards) {
  if (num_shards < 0) return InvalidArgumentError("negative shard count");
  std::map<int, std::deque<int>> queues;     // worker -> queued shard ids
  std::map<int, int> running;                // shard -> worker executing it
  std::vector<int> assignment(static_cast<size_t>(num_shards), -2);  // -2 = unfinished

  auto bad = [](const flight::Event& e, const std::string& why) {
    return InternalError("flight replay: event seq " + std::to_string(e.seq) +
                         " (" + e.type + ", worker " +
                         std::to_string(e.worker) + ", shard " +
                         std::to_string(e.shard) + "): " + why);
  };

  for (const flight::Event& e : events) {
    if (e.type == kEventDeal) {
      if (e.shard < 0 || e.shard >= num_shards) {
        return bad(e, "dealt shard out of range");
      }
      queues[e.worker].push_back(e.shard);
    } else if (e.type == kEventDispatch) {
      std::deque<int>& q = queues[e.worker];
      if (q.empty() || q.front() != e.shard) {
        return bad(e, "dispatch does not match the worker's queue front");
      }
      q.pop_front();
      running[e.shard] = e.worker;
    } else if (e.type == kEventSteal) {
      // detail = "victim=N"
      const size_t eq = e.detail.find('=');
      if (e.detail.rfind("victim=", 0) != 0 || eq == std::string::npos) {
        return bad(e, "steal event without victim= detail");
      }
      const int victim = std::atoi(e.detail.c_str() + eq + 1);
      std::deque<int>& q = queues[victim];
      if (q.empty() || q.back() != e.shard) {
        return bad(e, "steal does not match the victim's queue back");
      }
      q.pop_back();
      running[e.shard] = e.worker;
    } else if (e.type == kEventRequeue) {
      auto it = running.find(e.shard);
      if (it == running.end() || it->second != e.worker) {
        return bad(e, "requeue of a shard this worker was not running");
      }
      running.erase(it);
      queues[e.worker].push_back(e.shard);
    } else if (e.type == kEventComplete) {
      auto it = running.find(e.shard);
      if (it == running.end() || it->second != e.worker) {
        return bad(e, "completion by a worker that was not running the shard");
      }
      running.erase(it);
      if (assignment[static_cast<size_t>(e.shard)] != -2) {
        return bad(e, "shard completed twice");
      }
      assignment[static_cast<size_t>(e.shard)] = e.worker;
    } else if (e.type == kEventDuplicate) {
      // A discarded duplicate completion: the shard must already be done.
      if (e.shard < 0 || e.shard >= num_shards ||
          assignment[static_cast<size_t>(e.shard)] == -2) {
        return bad(e, "duplicate discard for a shard not yet completed");
      }
      running.erase(e.shard);
    } else if (e.type == kEventFallback) {
      if (e.shard < 0 || e.shard >= num_shards) {
        return bad(e, "fallback shard out of range");
      }
      if (assignment[static_cast<size_t>(e.shard)] != -2) {
        return bad(e, "fallback for an already-completed shard");
      }
      assignment[static_cast<size_t>(e.shard)] = -1;
    }
    // restart / worker_dead / fault / stall carry no queue transitions.
  }
  for (int s = 0; s < num_shards; ++s) {
    if (assignment[static_cast<size_t>(s)] == -2) {
      return InternalError("flight replay: shard " + std::to_string(s) +
                           " never completed");
    }
  }
  return assignment;
}

}  // namespace simj::dist
