// Deterministic fault-injecting cluster simulator for the distributed join.
//
// ClusterSim plugs into DistJoinParams::fault_hook and decides, for every
// shard execution, whether the executing worker is slow (sleeps before
// evaluating), dies mid-shard (abandons the shard after a prefix of its
// pairs), or runs clean. Decisions are a PURE FUNCTION of
// (seed, shard_id, attempt) — not of wall time, thread interleaving, or
// which worker the scheduler happened to hand the shard to — so a seed
// fully reproduces its fault plan: re-running a failing seed replays the
// exact same slow/dead/restart schedule even though OS scheduling differs.
//
// A "restarting worker" emerges from the composition: an injected death
// fails the shard execution, the coordinator requeues the shard and
// restarts the worker (up to max_worker_restarts), and the retried attempt
// re-rolls its fate with attempt+1 — so a shard can die several times on
// the way to completion and still merge byte-identically.

#ifndef SIMJ_DIST_SIMULATOR_H_
#define SIMJ_DIST_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "dist/worker.h"

namespace simj::dist {

struct SimOptions {
  uint64_t seed = 1;
  // Probability a shard execution runs on a slow worker, and the injected
  // delay range (uniform, milliseconds).
  double slow_probability = 0.0;
  double slow_min_ms = 5.0;
  double slow_max_ms = 20.0;
  // Probability a shard execution dies mid-shard. The death point is a
  // uniform draw over the shard prefix [0, |shard| pairs]; the worker
  // evaluates that many pairs and abandons the rest.
  double death_probability = 0.0;
};

class ClusterSim {
 public:
  explicit ClusterSim(const SimOptions& options) : options_(options) {}

  // The fault decision for one shard execution. `attempt` counts
  // executions of that shard (the coordinator increments it on every
  // requeue), so retries re-roll independently. `worker` and
  // `shard_pairs` only shape the draw (death point bound); they never
  // influence WHETHER a fault fires.
  FaultSpec Decide(int shard_id, int attempt, int shard_pairs);

  // Binds Decide as a coordinator fault hook (the ClusterSim must outlive
  // the join it is injected into).
  std::function<FaultSpec(int worker, int shard_id, int attempt,
                          int shard_pairs)>
  Hook();

  // Injection tallies (across all hook calls; thread-safe).
  int64_t injected_delays() const {
    return injected_delays_.load(std::memory_order_relaxed);
  }
  int64_t injected_deaths() const {
    return injected_deaths_.load(std::memory_order_relaxed);
  }
  // Total milliseconds of injected delay (for stall-budget assertions).
  double injected_delay_ms() const;

 private:
  const SimOptions options_;
  std::atomic<int64_t> injected_delays_{0};
  std::atomic<int64_t> injected_deaths_{0};
  std::atomic<int64_t> injected_delay_us_{0};
};

}  // namespace simj::dist

#endif  // SIMJ_DIST_SIMULATOR_H_
