#include "dist/shard.h"

#include <algorithm>
#include <utility>

#include "core/index.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simj::dist {

ShardPlan PlanShards(const std::vector<graph::LabeledGraph>& d,
                     const std::vector<graph::UncertainGraph>& u,
                     const core::SimJParams& params,
                     const ShardPlanOptions& options) {
  SIMJ_CHECK_GE(options.max_pairs_per_shard, 1);
  static metrics::Counter& skipped_total =
      metrics::Registry::Global().GetCounter("simj_index_skipped_pairs_total");
  trace::ScopedSpan span("shard_planning", "dist");

  core::CertainGraphIndex index(&d);
  ShardPlan plan;
  const int num_u = static_cast<int>(u.size());
  // Walk buckets in ascending (|V|, |E|) order so the plan is a pure
  // function of the workload. Within a bucket, pairs are ordered by
  // (g_index, q_index); the final merge re-sorts results anyway.
  std::vector<std::pair<int, int>> bucket_pairs;
  for (const auto& [signature, members] : index.buckets()) {
    bucket_pairs.clear();
    for (int gi = 0; gi < num_u; ++gi) {
      if (options.use_index &&
          !core::CertainGraphIndex::SignatureSurvives(
              signature.first, signature.second, u[gi], params.tau)) {
        // Same accounting as IndexedSimJoin: index-skipped pairs count as
        // structurally pruned and get kIndexCount explain records when
        // sampled.
        const int64_t skipped = static_cast<int64_t>(members.size());
        plan.pre_stats.total_pairs += skipped;
        plan.pre_stats.pruned_structural += skipped;
        skipped_total.Add(skipped);
        if (params.explain.enabled) {
          for (int qi : members) {
            if (!params.explain.ShouldExplain(qi, gi)) continue;
            core::PairExplain explain;
            explain.q_index = qi;
            explain.g_index = gi;
            explain.pruned_by = core::PruneStage::kIndexCount;
            plan.pre_explains.push_back(std::move(explain));
          }
        }
        continue;
      }
      for (int qi : members) bucket_pairs.emplace_back(qi, gi);
    }
    // Cut the bucket into shards of at most max_pairs_per_shard pairs.
    for (size_t begin = 0; begin < bucket_pairs.size();
         begin += static_cast<size_t>(options.max_pairs_per_shard)) {
      const size_t end =
          std::min(bucket_pairs.size(),
                   begin + static_cast<size_t>(options.max_pairs_per_shard));
      Shard shard;
      shard.shard_id = static_cast<int>(plan.shards.size());
      shard.vertices = signature.first;
      shard.edges = signature.second;
      shard.pairs.assign(bucket_pairs.begin() + static_cast<long>(begin),
                         bucket_pairs.begin() + static_cast<long>(end));
      plan.planned_pairs += static_cast<int64_t>(shard.pairs.size());
      plan.shards.push_back(std::move(shard));
    }
  }
  return plan;
}

}  // namespace simj::dist
