#include "dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <iterator>
#include <thread>
#include <utility>

#include "core/progress.h"
#include "dist/clusterz.h"
#include "util/check.h"
#include "util/flight_recorder.h"
#include "util/health.h"
#include "util/log.h"
#include "util/heap_profiler.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/sync.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simj::dist {

namespace {

// Canonical (q_index, g_index) output order — the same comparators
// JoinPairs applies, so the merged result is byte-comparable against the
// serial oracle.
void SortByPairIdentity(std::vector<core::MatchedPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const core::MatchedPair& a, const core::MatchedPair& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

void SortByPairIdentity(std::vector<core::PairExplain>* explains) {
  std::sort(explains->begin(), explains->end(),
            [](const core::PairExplain& a, const core::PairExplain& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

// Folds a child worker's JoinStats into the registry counters that
// EvaluatePair would have incremented in-process, so progress/statusz see
// process-transport work at shard granularity.
void ReplayStatsIntoRegistry(const core::JoinStats& stats) {
  metrics::Registry& r = metrics::Registry::Global();
  static metrics::Counter& pairs = r.GetCounter("simj_join_pairs_total");
  static metrics::Counter& pruned_structural =
      r.GetCounter("simj_join_pruned_structural_total");
  static metrics::Counter& pruned_probabilistic =
      r.GetCounter("simj_join_pruned_probabilistic_total");
  static metrics::Counter& candidates =
      r.GetCounter("simj_join_candidates_total");
  static metrics::Counter& results = r.GetCounter("simj_join_results_total");
  pairs.Add(stats.total_pairs);
  pruned_structural.Add(stats.pruned_structural);
  pruned_probabilistic.Add(stats.pruned_probabilistic);
  candidates.Add(stats.candidates);
  results.Add(stats.results);
}

// Folds one completed shard's counters into the `worker="<label>"`-labeled
// series of the same families, for BOTH transports. Only non-duplicate
// completions reach here, and a dying worker's partial evaluation never
// does, so the per-label sums across every `worker` value equal the totals
// an unsharded run would produce. Per shard, not per pair — the labeled
// lookup's registry mutex is off the hot path.
void AddLabeledShardStats(const core::JoinStats& stats,
                          const std::string& worker_label) {
  metrics::Registry& r = metrics::Registry::Global();
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"worker", worker_label}};
  auto add = [&](const char* family, int64_t value) {
    r.GetCounter(metrics::LabeledName(family, labels)).Add(value);
  };
  add("simj_join_pairs_total", stats.total_pairs);
  add("simj_join_pruned_structural_total", stats.pruned_structural);
  add("simj_join_pruned_probabilistic_total", stats.pruned_probabilistic);
  add("simj_join_candidates_total", stats.candidates);
  add("simj_join_results_total", stats.results);
}

// The Chrome-trace pid of worker `w`'s process lane (pid 1 is the
// coordinator's own "simj" lane; 2 is left unused for clarity).
int WorkerLanePid(int w) { return w + 2; }

class Coordinator : public ClusterzSource {
 public:
  Coordinator(const ShardPlan& plan,
              std::vector<std::unique_ptr<ShardWorker>>* workers,
              const WorkerContext& ctx, const DistJoinParams& dist_params,
              uint64_t trace_id)
      : plan_(plan),
        workers_(workers),
        ctx_(ctx),
        dist_params_(dist_params),
        num_workers_(static_cast<int>(workers->size())),
        num_shards_(static_cast<int>(plan.shards.size())),
        trace_id_(trace_id),
        state_(plan.shards.size(), ShardState::kQueued),
        attempts_(plan.shards.size(), 0),
        results_(plan.shards.size()),
        queues_(workers->size()) {
    stats_.shards_planned = num_shards_;
    stats_.workers.resize(workers->size());
    stats_.shard_completed_by.assign(plan.shards.size(), -1);
    // Deterministic round-robin deal; stealing rebalances at runtime.
    for (int s = 0; s < num_shards_; ++s) {
      const int w = s % num_workers_;
      queues_[static_cast<size_t>(w)].push_back(s);
      RecordEvent(kEventDeal, w, s, /*attempt=*/-1);
    }
  }

  ~Coordinator() override = default;

  DistStats Run(core::JoinResult* result) {
    // Publish live state for /clusterz for the duration of the run (the
    // source registry holds its mutex across LiveJson, so tearing this
    // down before returning is safe even against an in-flight scrape).
    SetClusterzSource(this);
    core::JoinProgress& progress = core::JoinProgress::Global();
    const double stall_warn_ms = ctx_.params->stall_warn_ms;
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (stall_warn_ms > 0.0) {
      monitor = std::thread([this, &progress, &monitor_stop, stall_warn_ms] {
        trace::SetThisThreadName("dist-stall-monitor");
        const auto poll = std::chrono::duration<double, std::milli>(
            std::clamp(stall_warn_ms / 4.0, 1.0, 200.0));
        auto report = [&] {
          for (const core::StallEvent& event :
               progress.CheckStalls(stall_warn_ms)) {
            stall_events_.fetch_add(1, std::memory_order_relaxed);
            health::SetUnhealthy(
                "stall_watchdog",
                "dist worker " + std::to_string(event.worker) +
                    " stalled for " + std::to_string(event.stalled_ms) +
                    " ms");
            RecordEvent(kEventStall, event.worker, /*shard=*/-1,
                        /*attempt=*/-1,
                        std::to_string(event.stalled_ms) + " ms on pair <q=" +
                            std::to_string(event.q_index) + ",g=" +
                            std::to_string(event.g_index) + ">");
            SIMJ_LOG(WARN)
                << "dist: stalled worker " << event.worker << ": pair <q="
                << event.q_index << ",g=" << event.g_index << "> running for "
                << event.stalled_ms << " ms (budget " << stall_warn_ms
                << " ms)";
          }
        };
        while (!monitor_stop.load(std::memory_order_acquire)) {
          report();
          std::this_thread::sleep_for(poll);
        }
        report();
      });
    }

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(static_cast<size_t>(num_workers_));
    for (int w = 0; w < num_workers_; ++w) {
      dispatchers.emplace_back([this, w] {
        trace::SetThisThreadName("dist-dispatch-" + std::to_string(w));
        DispatchLoop(w);
      });
    }
    for (std::thread& t : dispatchers) t.join();

    // Convergence guarantee: whatever the fault schedule left unfinished
    // runs inline, fault-free, on this thread.
    RunFallback();

    if (monitor.joinable()) {
      monitor_stop.store(true, std::memory_order_release);
      monitor.join();
    }

    Merge(result);
    // Unpublish before the final stats move so no /clusterz scrape can
    // observe stats_ mid-move.
    SetClusterzSource(nullptr);
    DistStats out_stats;
    {
      MutexLock lock(mu_);
      stats_.stall_events =
          static_cast<int>(stall_events_.load(std::memory_order_relaxed));
      // The run's flight events, straight from the global ring (cleared by
      // ShardedSimJoin at run start, so the copy is exactly this run).
      stats_.events = flight::FlightRecorder::Global().Events();
      out_stats = std::move(stats_);
    }
    return out_stats;
  }

  // ClusterzSource: live queue/worker state, sampled under mu_ from the
  // statusz server thread. Heartbeat ages come from JoinProgress, like the
  // /statusz join section.
  std::string LiveJson() override {
    core::ProgressSnapshot progress = core::JoinProgress::Global().Snapshot();
    std::vector<double> heartbeat_age_ms(static_cast<size_t>(num_workers_),
                                         -1.0);
    for (const auto& beat : progress.heartbeats) {
      if (beat.worker >= 0 && beat.worker < num_workers_) {
        heartbeat_age_ms[static_cast<size_t>(beat.worker)] = beat.age_ms;
      }
    }
    MutexLock lock(mu_);
    std::string out = "{\"num_shards\":" + std::to_string(num_shards_) +
                      ",\"done\":" + std::to_string(done_count_) +
                      ",\"requeued\":" + std::to_string(stats_.shards_requeued) +
                      ",\"fallback\":" + std::to_string(stats_.fallback_shards) +
                      ",\"workers\":[";
    for (int w = 0; w < num_workers_; ++w) {
      const WorkerReport& report = stats_.workers[static_cast<size_t>(w)];
      if (w > 0) out += ",";
      out += "{\"worker\":" + std::to_string(w) +
             ",\"queue_depth\":" +
             std::to_string(queues_[static_cast<size_t>(w)].size()) +
             ",\"completed\":" + std::to_string(report.shards_completed) +
             ",\"failed\":" + std::to_string(report.shards_failed) +
             ",\"steals\":" + std::to_string(report.steals) +
             ",\"restarts\":" + std::to_string(report.restarts) +
             ",\"restart_budget\":" +
             std::to_string(dist_params_.max_worker_restarts - report.restarts) +
             ",\"state\":\"" +
             (report.permanently_dead ? "dead" : "alive") +
             "\",\"heartbeat_age_ms\":";
      const double age = heartbeat_age_ms[static_cast<size_t>(w)];
      if (age < 0.0) {
        out += "null";
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.1f", age);
        out += buffer;
      }
      out += "}";
    }
    out += "]}";
    return out;
  }

 private:
  enum class ShardState { kQueued, kRunning, kDone };

  // Records one scheduling decision into the global flight ring. Queue
  // transitions (deal/dispatch/steal/requeue/complete/fallback) are
  // recorded while mu_ is held, so their ring order IS the queue-operation
  // order — the property ReplayFinalAssignment relies on.
  static void RecordEvent(const char* type, int worker, int shard,
                          int attempt, std::string detail = std::string()) {
    flight::Event event;
    event.type = type;
    event.worker = worker;
    event.shard = shard;
    event.attempt = attempt;
    event.detail = std::move(detail);
    flight::FlightRecorder::Global().Record(std::move(event));
  }

  void DispatchLoop(int w) {
    ShardWorker& worker = *(*workers_)[w];
    core::JoinProgress& progress = core::JoinProgress::Global();
    const bool heartbeats = progress.heartbeats_armed();
    for (;;) {
      int attempt = 0;
      bool stolen = false;
      const int shard_id = NextShard(w, &attempt, &stolen);
      if (shard_id < 0) return;
      const Shard& shard = plan_.shards[static_cast<size_t>(shard_id)];
      const FaultSpec fault =
          dist_params_.fault_hook
              ? dist_params_.fault_hook(w, shard_id, attempt,
                                        static_cast<int>(shard.pairs.size()))
              : FaultSpec{};
      if (!fault.none()) {
        RecordEvent(kEventFault, w, shard_id, attempt,
                    "delay_ms=" + std::to_string(fault.delay_ms) +
                        " die_after_pairs=" +
                        std::to_string(fault.die_after_pairs));
      }
      // Beat on the shard's first pair before handing it off: a worker
      // that stalls or dies inside the shard ages this heartbeat, which is
      // what the stall watchdog samples — transport-independent liveness.
      if (heartbeats && !shard.pairs.empty()) {
        progress.Heartbeat(w, shard.pairs.front().first,
                           shard.pairs.front().second);
      }
      // Trace context for this attempt: the coordinator owns the attempt
      // span (synthesized below even when the worker dies and ships
      // nothing — failed attempts must appear in the trace); the worker's
      // own spans parent to it through span_ctx.parent_span_id.
      trace::Tracer& tracer = trace::Tracer::Global();
      SpanContext span_ctx;
      if (tracer.enabled()) {
        span_ctx.collect = true;
        span_ctx.trace_id = trace_id_;
        span_ctx.parent_span_id =
            next_span_id_.fetch_add(1, std::memory_order_relaxed);
      }
      // While a CPU capture is armed (bench flag or a mid-join /profilez),
      // ask the worker to ship its pending samples with the response; one
      // pid-checked atomic load when no capture is armed.
      span_ctx.profile_hz = prof::ActiveHz();
      // Same contract for an armed heap capture (bench flag or a mid-join
      // /heapz): 0 when disarmed, so the field ships nothing.
      span_ctx.heap_sample_bytes = heapprof::ActiveSampleBytes();
      const double begin_us = tracer.NowUs();
      WallTimer timer;
      StatusOr<ShardResult> result = worker.RunShard(shard, fault, span_ctx);
      if (heartbeats) progress.PairDone(w);
      if (span_ctx.collect) {
        std::vector<trace::TraceEvent> batch;
        trace::TraceEvent attempt_span;
        attempt_span.name = "shard-" + std::to_string(shard_id) +
                            "/attempt-" + std::to_string(attempt);
        attempt_span.category = fault.none() ? "shard" : "shard_fault";
        attempt_span.pid = WorkerLanePid(w);
        attempt_span.ts_us = begin_us;
        attempt_span.dur_us = tracer.NowUs() - begin_us;
        attempt_span.trace_id = trace_id_;
        attempt_span.span_id = span_ctx.parent_span_id;
        batch.push_back(std::move(attempt_span));
        if (result.ok()) {
          // Re-file the worker-captured spans under this worker's process
          // lane (tid collapses to 0: one execution row per worker).
          for (trace::TraceEvent& span : result.value().spans) {
            span.pid = WorkerLanePid(w);
            span.tid = 0;
            batch.push_back(std::move(span));
          }
          result.value().spans.clear();
        }
        tracer.InjectEvents(std::move(batch));
      }
      if (result.ok()) {
        CompleteShard(w, shard_id, std::move(result).value(),
                      timer.ElapsedSeconds(), worker.counts_in_process());
      } else if (!HandleFailure(w, shard_id, attempt, result.status())) {
        return;  // worker is permanently dead; its queue remains stealable
      }
    }
  }

  // Blocks until a shard is available (own queue, then stealing from the
  // back of the longest other queue) or the join is complete (-1).
  int NextShard(int w, int* attempt, bool* stolen) {
    MutexLock lock(mu_);
    for (;;) {
      if (done_count_ == num_shards_) return -1;
      int shard_id = -1;
      int victim = -1;
      if (!queues_[w].empty()) {
        shard_id = queues_[w].front();
        queues_[w].pop_front();
        *stolen = false;
      } else {
        size_t longest = 0;
        for (int other = 0; other < num_workers_; ++other) {
          if (other == w || queues_[other].empty()) continue;
          if (queues_[other].size() > longest) {
            longest = queues_[other].size();
            victim = other;
          }
        }
        if (victim >= 0) {
          shard_id = queues_[victim].back();
          queues_[victim].pop_back();
          *stolen = true;
          ++stats_.workers[static_cast<size_t>(w)].steals;
        }
      }
      if (shard_id >= 0) {
        SIMJ_DCHECK(state_[static_cast<size_t>(shard_id)] ==
                    ShardState::kQueued);
        state_[static_cast<size_t>(shard_id)] = ShardState::kRunning;
        *attempt = attempts_[static_cast<size_t>(shard_id)]++;
        if (*stolen) {
          RecordEvent(kEventSteal, w, shard_id, *attempt,
                      "victim=" + std::to_string(victim));
        } else {
          RecordEvent(kEventDispatch, w, shard_id, *attempt);
        }
        return shard_id;
      }
      // Nothing queued, join unfinished: shards running elsewhere may yet
      // fail and be requeued. Woken by requeue or completion.
      cv_.Wait(mu_);
    }
  }

  void CompleteShard(int w, int shard_id, ShardResult result,
                     double elapsed_seconds, bool counts_in_process) {
    bool duplicate = false;
    core::JoinStats shard_stats;
    prof::SampleBatch profile = std::move(result.profile);
    result.profile = prof::SampleBatch();
    heapprof::HeapBatch heap = std::move(result.heap);
    result.heap = heapprof::HeapBatch();
    {
      MutexLock lock(mu_);
      const auto id = static_cast<size_t>(shard_id);
      if (state_[id] == ShardState::kDone) {
        duplicate = true;
        ++stats_.duplicate_results_discarded;
        RecordEvent(kEventDuplicate, w, shard_id, /*attempt=*/-1);
      } else {
        state_[id] = ShardState::kDone;
        results_[id] = std::move(result);
        ++done_count_;
        stats_.shard_completed_by[id] = w;
        WorkerReport& report = stats_.workers[static_cast<size_t>(w)];
        ++report.shards_completed;
        report.busy_seconds += elapsed_seconds;
        RecordEvent(kEventComplete, w, shard_id, /*attempt=*/-1);
        // Copied out under the lock: the registry folds below must not
        // touch results_ once mu_ is released (another thread could be
        // merging by then).
        shard_stats = results_[id].stats;
      }
      cv_.NotifyAll();
    }
    if (!duplicate) {
      if (!counts_in_process) ReplayStatsIntoRegistry(shard_stats);
      AddLabeledShardStats(shard_stats, std::to_string(w));
      if (!profile.empty()) {
        // Outside mu_ (lock order: never hold mu_ into another module's
        // lock). Duplicates ship no second batch: the first completion
        // already drained the worker's ring for these samples.
        prof::AccumulateRemoteSection("worker-" + std::to_string(w), profile);
      }
      if (!heap.empty()) {
        // Duplicate completions were dropped above, so a worker's delta
        // batch is added exactly once — double-adding would inflate the
        // merged levels.
        heapprof::AccumulateRemoteSection("worker-" + std::to_string(w),
                                          heap);
      }
    }
  }

  // Requeues the failed shard and restarts the worker. Returns false when
  // the worker is permanently dead and its dispatch loop must exit.
  bool HandleFailure(int w, int shard_id, int attempt, const Status& status) {
    const std::string component = "dist_worker_" + std::to_string(w);
    bool exhausted = false;
    {
      MutexLock lock(mu_);
      SIMJ_DCHECK(state_[static_cast<size_t>(shard_id)] ==
                  ShardState::kRunning);
      state_[static_cast<size_t>(shard_id)] = ShardState::kQueued;
      queues_[static_cast<size_t>(w)].push_back(shard_id);
      ++stats_.shards_requeued;
      ++stats_.workers[static_cast<size_t>(w)].shards_failed;
      exhausted = stats_.workers[static_cast<size_t>(w)].restarts >=
                  dist_params_.max_worker_restarts;
      RecordEvent(kEventRequeue, w, shard_id, attempt, status.message());
      cv_.NotifyAll();
    }
    // Degraded until the worker is back (cleared below on a successful
    // restart; a permanently dead worker stays degraded until run end).
    health::SetUnhealthy(component, "died on shard " +
                                        std::to_string(shard_id) +
                                        "; not yet restarted");
    SIMJ_LOG(WARN) << "dist: worker " << w << " failed shard " << shard_id
                   << " (" << status.ToString() << "); shard requeued";
    if (!exhausted) {
      // Restart outside the lock: the process transport forks here.
      Status restarted = (*workers_)[static_cast<size_t>(w)]->Restart();
      MutexLock lock(mu_);
      ++stats_.workers[static_cast<size_t>(w)].restarts;
      if (restarted.ok()) {
        RecordEvent(kEventRestart, w, /*shard=*/-1, /*attempt=*/-1);
        health::SetHealthy(component);
        return true;
      }
      SIMJ_LOG(ERROR) << "dist: worker " << w
                      << " restart failed: " << restarted.ToString();
    }
    {
      MutexLock lock(mu_);
      stats_.workers[static_cast<size_t>(w)].permanently_dead = true;
      RecordEvent(kEventWorkerDead, w, /*shard=*/-1, /*attempt=*/-1,
                  "restart budget " +
                      std::to_string(dist_params_.max_worker_restarts) +
                      " exhausted");
    }
    health::SetUnhealthy(component, "permanently dead (restart budget " +
                                        std::to_string(
                                            dist_params_.max_worker_restarts) +
                                        " exhausted)");
    SIMJ_LOG(WARN) << "dist: worker " << w << " is permanently dead after "
                   << dist_params_.max_worker_restarts << " restarts";
    return false;
  }

  void RunFallback() {
    // Dispatch threads have all exited, but the statusz thread may still
    // scrape LiveJson concurrently — every state_/results_/stats_ touch
    // stays under mu_, with only RunShard itself outside the lock so a
    // scrape never blocks on an inline shard execution.
    std::vector<int> remaining;
    {
      MutexLock lock(mu_);
      for (int s = 0; s < num_shards_; ++s) {
        if (state_[static_cast<size_t>(s)] != ShardState::kDone) {
          remaining.push_back(s);
        }
      }
    }
    if (remaining.empty()) return;
    SIMJ_LOG(WARN) << "dist: all workers dead with " << remaining.size()
                   << " shard(s) unfinished; running them inline";
    std::unique_ptr<ShardWorker> inline_worker =
        MakeThreadWorker(ctx_, /*worker_index=*/0);
    trace::Tracer& tracer = trace::Tracer::Global();
    for (int shard_id : remaining) {
      const auto id = static_cast<size_t>(shard_id);
      // Collect even inline so the fallback attempt shows up as a span in
      // the coordinator's own lane, consistent with worker attempts.
      SpanContext span_ctx;
      if (tracer.enabled()) {
        span_ctx.collect = true;
        span_ctx.trace_id = trace_id_;
        span_ctx.parent_span_id =
            next_span_id_.fetch_add(1, std::memory_order_relaxed);
      }
      const double begin_us = tracer.NowUs();
      StatusOr<ShardResult> result =
          inline_worker->RunShard(plan_.shards[id], FaultSpec{}, span_ctx);
      // A fault-free thread-transport shard cannot fail.
      SIMJ_CHECK_OK(result.status());
      if (span_ctx.collect) {
        std::vector<trace::TraceEvent> batch;
        trace::TraceEvent attempt_span;
        attempt_span.name = "shard-" + std::to_string(shard_id) + "/fallback";
        attempt_span.category = "shard";
        attempt_span.pid = 1;  // the coordinator's own lane
        attempt_span.ts_us = begin_us;
        attempt_span.dur_us = tracer.NowUs() - begin_us;
        attempt_span.trace_id = trace_id_;
        attempt_span.span_id = span_ctx.parent_span_id;
        batch.push_back(std::move(attempt_span));
        for (trace::TraceEvent& span : result.value().spans) {
          span.pid = 1;
          span.tid = 0;
          batch.push_back(std::move(span));
        }
        result.value().spans.clear();
        tracer.InjectEvents(std::move(batch));
      }
      core::JoinStats shard_stats;
      {
        MutexLock lock(mu_);
        state_[id] = ShardState::kDone;
        results_[id] = std::move(result).value();
        ++done_count_;
        ++stats_.fallback_shards;
        RecordEvent(kEventFallback, /*worker=*/-1, shard_id, /*attempt=*/-1);
        shard_stats = results_[id].stats;
      }
      AddLabeledShardStats(shard_stats, "inline");
    }
  }

  // Deterministic merge: stats fold in ascending shard_id order, then the
  // global (q_index, g_index) sort erases scheduling order entirely.
  void Merge(core::JoinResult* result) {
    MutexLock lock(mu_);
    for (int s = 0; s < num_shards_; ++s) {
      ShardResult& shard = results_[static_cast<size_t>(s)];
      SIMJ_CHECK(state_[static_cast<size_t>(s)] == ShardState::kDone);
      core::MergeJoinStats(shard.stats, &result->stats);
      result->pairs.insert(result->pairs.end(),
                           std::make_move_iterator(shard.pairs.begin()),
                           std::make_move_iterator(shard.pairs.end()));
      result->explains.insert(result->explains.end(),
                              std::make_move_iterator(shard.explains.begin()),
                              std::make_move_iterator(shard.explains.end()));
    }
    SortByPairIdentity(&result->pairs);
    SortByPairIdentity(&result->explains);
  }

  const ShardPlan& plan_;
  std::vector<std::unique_ptr<ShardWorker>>* workers_;
  const WorkerContext ctx_;
  const DistJoinParams& dist_params_;
  const int num_workers_;
  const int num_shards_;
  const uint64_t trace_id_;
  std::atomic<uint64_t> next_span_id_{1};

  // Lock order: mu_ before FlightRecorder::mu_ (queue transitions record
  // flight events under mu_ so ring order is queue-operation order) and
  // before metrics Registry::mu_.
  Mutex mu_;
  CondVar cv_;
  std::vector<ShardState> state_ SIMJ_GUARDED_BY(mu_);
  std::vector<int> attempts_ SIMJ_GUARDED_BY(mu_);
  std::vector<ShardResult> results_ SIMJ_GUARDED_BY(mu_);
  std::vector<std::deque<int>> queues_ SIMJ_GUARDED_BY(mu_);
  int done_count_ SIMJ_GUARDED_BY(mu_) = 0;
  DistStats stats_ SIMJ_GUARDED_BY(mu_);
  std::atomic<int64_t> stall_events_{0};
};

}  // namespace

DistJoinResult ShardedSimJoin(const std::vector<graph::LabeledGraph>& d,
                              const std::vector<graph::UncertainGraph>& u,
                              const core::SimJParams& params,
                              const graph::LabelDictionary& dict,
                              const DistJoinParams& dist_params) {
  SIMJ_CHECK(dist_params.num_workers >= 1);
  metrics::Registry& registry = metrics::Registry::Global();
  static metrics::Counter& shards_planned_total =
      registry.GetCounter("simj_dist_shards_planned_total");
  static metrics::Counter& shards_requeued_total =
      registry.GetCounter("simj_dist_shards_requeued_total");
  static metrics::Counter& worker_restarts_total =
      registry.GetCounter("simj_dist_worker_restarts_total");
  static metrics::Counter& steals_total =
      registry.GetCounter("simj_dist_steals_total");
  static metrics::Gauge& workers_gauge = registry.GetGauge("simj_dist_workers");

  WallTimer wall;
  trace::ScopedSpan span("sharded_simjoin", "dist");

  // Observability setup: /clusterz goes live (no-op if no statusz server
  // runs), the flight ring starts fresh so its contents are exactly this
  // run, and each worker gets a named Chrome-trace process lane. The
  // trace id is per-run so spans of consecutive runs never alias.
  RegisterClusterzEndpoint();
  flight::FlightRecorder::Global().Clear();
  static std::atomic<uint64_t> next_trace_id{1};
  const uint64_t trace_id =
      next_trace_id.fetch_add(1, std::memory_order_relaxed);
  for (int w = 0; w < dist_params.num_workers; ++w) {
    trace::Tracer::Global().RegisterProcessLane(WorkerLanePid(w),
                                                "worker-" + std::to_string(w));
  }

  ShardPlanOptions plan_options;
  plan_options.max_pairs_per_shard = dist_params.max_pairs_per_shard;
  plan_options.use_index = dist_params.use_index;
  ShardPlan plan = PlanShards(d, u, params, plan_options);

  DistJoinResult out;
  out.join.stats = plan.pre_stats;
  out.join.explains = std::move(plan.pre_explains);
  // Index-pruned pairs never reach a shard, so the per-`worker`-label
  // accounting attributes plan-level pruning to the coordinator itself —
  // keeping the sum across all `worker` labels equal to an unsharded run.
  AddLabeledShardStats(plan.pre_stats, "coordinator");

  // Workers share the dictionary concurrently (and process workers fork a
  // snapshot of it); freeze for the duration, like the parallel JoinPairs
  // path does.
  dict.Freeze();
  WorkerContext ctx;
  ctx.d = &d;
  ctx.u = &u;
  ctx.params = &params;
  ctx.dict = &dict;

  // Spawn workers before any dispatch thread exists: the first fork of
  // each process worker happens while this process is single-threaded.
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(static_cast<size_t>(dist_params.num_workers));
  for (int w = 0; w < dist_params.num_workers; ++w) {
    if (dist_params.transport == Transport::kProcess) {
      StatusOr<std::unique_ptr<ShardWorker>> worker = MakeProcessWorker(ctx, w);
      if (worker.ok()) {
        workers.push_back(std::move(worker).value());
        continue;
      }
      SIMJ_LOG(ERROR) << "dist: spawning process worker " << w
                      << " failed (" << worker.status().ToString()
                      << "); degrading this slot to the thread transport";
    }
    workers.push_back(MakeThreadWorker(ctx, w));
  }

  core::JoinProgress& progress = core::JoinProgress::Global();
  const bool stall_on = params.stall_warn_ms > 0.0;
  const bool heartbeats_on = stall_on || progress.heartbeats_requested();
  progress.BeginJoin(plan.planned_pairs, dist_params.num_workers,
                     heartbeats_on);
  workers_gauge.Set(static_cast<double>(dist_params.num_workers));

  Coordinator coordinator(plan, &workers, ctx, dist_params, trace_id);
  out.dist = coordinator.Run(&out.join);

  progress.EndJoin();

  shards_planned_total.Add(out.dist.shards_planned);
  shards_requeued_total.Add(out.dist.shards_requeued);
  for (size_t w = 0; w < out.dist.workers.size(); ++w) {
    const WorkerReport& report = out.dist.workers[w];
    worker_restarts_total.Add(report.restarts);
    steals_total.Add(report.steals);
    // The run is over: a worker that was mid-death (or permanently dead)
    // no longer degrades the process — its shards all converged.
    health::SetHealthy("dist_worker_" + std::to_string(w));
  }

  // The same join postcondition JoinPairs enforces, across the merge.
  SIMJ_DCHECK_EQ(out.join.stats.total_pairs,
                 out.join.stats.pruned_structural +
                     out.join.stats.pruned_probabilistic +
                     out.join.stats.candidates);
  SIMJ_DCHECK_LE(out.join.stats.results, out.join.stats.candidates);
  out.join.stats.wall_seconds = wall.ElapsedSeconds();
  return out;
}

}  // namespace simj::dist
