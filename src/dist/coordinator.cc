#include "dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>

#include "core/progress.h"
#include "util/check.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simj::dist {

namespace {

// Canonical (q_index, g_index) output order — the same comparators
// JoinPairs applies, so the merged result is byte-comparable against the
// serial oracle.
void SortByPairIdentity(std::vector<core::MatchedPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const core::MatchedPair& a, const core::MatchedPair& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

void SortByPairIdentity(std::vector<core::PairExplain>* explains) {
  std::sort(explains->begin(), explains->end(),
            [](const core::PairExplain& a, const core::PairExplain& b) {
              return a.q_index != b.q_index ? a.q_index < b.q_index
                                            : a.g_index < b.g_index;
            });
}

// Folds a child worker's JoinStats into the registry counters that
// EvaluatePair would have incremented in-process, so progress/statusz see
// process-transport work at shard granularity.
void ReplayStatsIntoRegistry(const core::JoinStats& stats) {
  metrics::Registry& r = metrics::Registry::Global();
  static metrics::Counter& pairs = r.GetCounter("simj_join_pairs_total");
  static metrics::Counter& pruned_structural =
      r.GetCounter("simj_join_pruned_structural_total");
  static metrics::Counter& pruned_probabilistic =
      r.GetCounter("simj_join_pruned_probabilistic_total");
  static metrics::Counter& candidates =
      r.GetCounter("simj_join_candidates_total");
  static metrics::Counter& results = r.GetCounter("simj_join_results_total");
  pairs.Add(stats.total_pairs);
  pruned_structural.Add(stats.pruned_structural);
  pruned_probabilistic.Add(stats.pruned_probabilistic);
  candidates.Add(stats.candidates);
  results.Add(stats.results);
}

class Coordinator {
 public:
  Coordinator(const ShardPlan& plan,
              std::vector<std::unique_ptr<ShardWorker>>* workers,
              const WorkerContext& ctx, const DistJoinParams& dist_params)
      : plan_(plan),
        workers_(workers),
        ctx_(ctx),
        dist_params_(dist_params),
        num_workers_(static_cast<int>(workers->size())),
        num_shards_(static_cast<int>(plan.shards.size())),
        state_(plan.shards.size(), ShardState::kQueued),
        attempts_(plan.shards.size(), 0),
        results_(plan.shards.size()),
        queues_(workers->size()) {
    stats_.shards_planned = num_shards_;
    stats_.workers.resize(workers->size());
    // Deterministic round-robin deal; stealing rebalances at runtime.
    for (int s = 0; s < num_shards_; ++s) {
      queues_[s % num_workers_].push_back(s);
    }
  }

  DistStats Run(core::JoinResult* result) {
    core::JoinProgress& progress = core::JoinProgress::Global();
    const double stall_warn_ms = ctx_.params->stall_warn_ms;
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (stall_warn_ms > 0.0) {
      monitor = std::thread([this, &progress, &monitor_stop, stall_warn_ms] {
        trace::SetThisThreadName("dist-stall-monitor");
        const auto poll = std::chrono::duration<double, std::milli>(
            std::clamp(stall_warn_ms / 4.0, 1.0, 200.0));
        auto report = [&] {
          for (const core::StallEvent& event :
               progress.CheckStalls(stall_warn_ms)) {
            stall_events_.fetch_add(1, std::memory_order_relaxed);
            SIMJ_LOG(WARN)
                << "dist: stalled worker " << event.worker << ": pair <q="
                << event.q_index << ",g=" << event.g_index << "> running for "
                << event.stalled_ms << " ms (budget " << stall_warn_ms
                << " ms)";
          }
        };
        while (!monitor_stop.load(std::memory_order_acquire)) {
          report();
          std::this_thread::sleep_for(poll);
        }
        report();
      });
    }

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(static_cast<size_t>(num_workers_));
    for (int w = 0; w < num_workers_; ++w) {
      dispatchers.emplace_back([this, w] {
        trace::SetThisThreadName("dist-dispatch-" + std::to_string(w));
        DispatchLoop(w);
      });
    }
    for (std::thread& t : dispatchers) t.join();

    // Convergence guarantee: whatever the fault schedule left unfinished
    // runs inline, fault-free, on this thread.
    RunFallback();

    if (monitor.joinable()) {
      monitor_stop.store(true, std::memory_order_release);
      monitor.join();
    }

    Merge(result);
    stats_.stall_events =
        static_cast<int>(stall_events_.load(std::memory_order_relaxed));
    return std::move(stats_);
  }

 private:
  enum class ShardState { kQueued, kRunning, kDone };

  void DispatchLoop(int w) {
    ShardWorker& worker = *(*workers_)[w];
    core::JoinProgress& progress = core::JoinProgress::Global();
    const bool heartbeats = progress.heartbeats_armed();
    for (;;) {
      int attempt = 0;
      bool stolen = false;
      const int shard_id = NextShard(w, &attempt, &stolen);
      if (shard_id < 0) return;
      const Shard& shard = plan_.shards[static_cast<size_t>(shard_id)];
      const FaultSpec fault =
          dist_params_.fault_hook
              ? dist_params_.fault_hook(w, shard_id, attempt,
                                        static_cast<int>(shard.pairs.size()))
              : FaultSpec{};
      // Beat on the shard's first pair before handing it off: a worker
      // that stalls or dies inside the shard ages this heartbeat, which is
      // what the stall watchdog samples — transport-independent liveness.
      if (heartbeats && !shard.pairs.empty()) {
        progress.Heartbeat(w, shard.pairs.front().first,
                           shard.pairs.front().second);
      }
      WallTimer timer;
      StatusOr<ShardResult> result = worker.RunShard(shard, fault);
      if (heartbeats) progress.PairDone(w);
      if (result.ok()) {
        CompleteShard(w, shard_id, std::move(result).value(),
                      timer.ElapsedSeconds(), worker.counts_in_process());
      } else if (!HandleFailure(w, shard_id, result.status())) {
        return;  // worker is permanently dead; its queue remains stealable
      }
    }
  }

  // Blocks until a shard is available (own queue, then stealing from the
  // back of the longest other queue) or the join is complete (-1).
  int NextShard(int w, int* attempt, bool* stolen) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (done_count_ == num_shards_) return -1;
      int shard_id = -1;
      if (!queues_[w].empty()) {
        shard_id = queues_[w].front();
        queues_[w].pop_front();
        *stolen = false;
      } else {
        int victim = -1;
        size_t longest = 0;
        for (int other = 0; other < num_workers_; ++other) {
          if (other == w || queues_[other].empty()) continue;
          if (queues_[other].size() > longest) {
            longest = queues_[other].size();
            victim = other;
          }
        }
        if (victim >= 0) {
          shard_id = queues_[victim].back();
          queues_[victim].pop_back();
          *stolen = true;
          ++stats_.workers[static_cast<size_t>(w)].steals;
        }
      }
      if (shard_id >= 0) {
        SIMJ_DCHECK(state_[static_cast<size_t>(shard_id)] ==
                    ShardState::kQueued);
        state_[static_cast<size_t>(shard_id)] = ShardState::kRunning;
        *attempt = attempts_[static_cast<size_t>(shard_id)]++;
        return shard_id;
      }
      // Nothing queued, join unfinished: shards running elsewhere may yet
      // fail and be requeued. Woken by requeue or completion.
      cv_.wait(lock);
    }
  }

  void CompleteShard(int w, int shard_id, ShardResult result,
                     double elapsed_seconds, bool counts_in_process) {
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto id = static_cast<size_t>(shard_id);
      if (state_[id] == ShardState::kDone) {
        duplicate = true;
        ++stats_.duplicate_results_discarded;
      } else {
        state_[id] = ShardState::kDone;
        results_[id] = std::move(result);
        ++done_count_;
        WorkerReport& report = stats_.workers[static_cast<size_t>(w)];
        ++report.shards_completed;
        report.busy_seconds += elapsed_seconds;
      }
      cv_.notify_all();
    }
    if (!duplicate && !counts_in_process) {
      ReplayStatsIntoRegistry(results_[static_cast<size_t>(shard_id)].stats);
    }
  }

  // Requeues the failed shard and restarts the worker. Returns false when
  // the worker is permanently dead and its dispatch loop must exit.
  bool HandleFailure(int w, int shard_id, const Status& status) {
    bool exhausted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      SIMJ_DCHECK(state_[static_cast<size_t>(shard_id)] ==
                  ShardState::kRunning);
      state_[static_cast<size_t>(shard_id)] = ShardState::kQueued;
      queues_[static_cast<size_t>(w)].push_back(shard_id);
      ++stats_.shards_requeued;
      ++stats_.workers[static_cast<size_t>(w)].shards_failed;
      exhausted = stats_.workers[static_cast<size_t>(w)].restarts >=
                  dist_params_.max_worker_restarts;
      cv_.notify_all();
    }
    SIMJ_LOG(WARN) << "dist: worker " << w << " failed shard " << shard_id
                   << " (" << status.ToString() << "); shard requeued";
    if (!exhausted) {
      // Restart outside the lock: the process transport forks here.
      Status restarted = (*workers_)[static_cast<size_t>(w)]->Restart();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.workers[static_cast<size_t>(w)].restarts;
      if (restarted.ok()) return true;
      SIMJ_LOG(ERROR) << "dist: worker " << w
                      << " restart failed: " << restarted.ToString();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.workers[static_cast<size_t>(w)].permanently_dead = true;
    }
    SIMJ_LOG(WARN) << "dist: worker " << w << " is permanently dead after "
                   << dist_params_.max_worker_restarts << " restarts";
    return false;
  }

  void RunFallback() {
    // Dispatch threads have all exited; state is ours alone (the monitor
    // thread never reads it).
    std::vector<int> remaining;
    for (int s = 0; s < num_shards_; ++s) {
      if (state_[static_cast<size_t>(s)] != ShardState::kDone) {
        remaining.push_back(s);
      }
    }
    if (remaining.empty()) return;
    SIMJ_LOG(WARN) << "dist: all workers dead with " << remaining.size()
                   << " shard(s) unfinished; running them inline";
    std::unique_ptr<ShardWorker> inline_worker =
        MakeThreadWorker(ctx_, /*worker_index=*/0);
    for (int shard_id : remaining) {
      const auto id = static_cast<size_t>(shard_id);
      StatusOr<ShardResult> result =
          inline_worker->RunShard(plan_.shards[id], FaultSpec{});
      // A fault-free thread-transport shard cannot fail.
      SIMJ_CHECK_OK(result.status());
      state_[id] = ShardState::kDone;
      results_[id] = std::move(result).value();
      ++done_count_;
      ++stats_.fallback_shards;
    }
  }

  // Deterministic merge: stats fold in ascending shard_id order, then the
  // global (q_index, g_index) sort erases scheduling order entirely.
  void Merge(core::JoinResult* result) {
    for (int s = 0; s < num_shards_; ++s) {
      ShardResult& shard = results_[static_cast<size_t>(s)];
      SIMJ_CHECK(state_[static_cast<size_t>(s)] == ShardState::kDone);
      core::MergeJoinStats(shard.stats, &result->stats);
      result->pairs.insert(result->pairs.end(),
                           std::make_move_iterator(shard.pairs.begin()),
                           std::make_move_iterator(shard.pairs.end()));
      result->explains.insert(result->explains.end(),
                              std::make_move_iterator(shard.explains.begin()),
                              std::make_move_iterator(shard.explains.end()));
    }
    SortByPairIdentity(&result->pairs);
    SortByPairIdentity(&result->explains);
  }

  const ShardPlan& plan_;
  std::vector<std::unique_ptr<ShardWorker>>* workers_;
  const WorkerContext ctx_;
  const DistJoinParams& dist_params_;
  const int num_workers_;
  const int num_shards_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ShardState> state_;
  std::vector<int> attempts_;
  std::vector<ShardResult> results_;
  std::vector<std::deque<int>> queues_;
  int done_count_ = 0;
  DistStats stats_;
  std::atomic<int64_t> stall_events_{0};
};

}  // namespace

DistJoinResult ShardedSimJoin(const std::vector<graph::LabeledGraph>& d,
                              const std::vector<graph::UncertainGraph>& u,
                              const core::SimJParams& params,
                              const graph::LabelDictionary& dict,
                              const DistJoinParams& dist_params) {
  SIMJ_CHECK(dist_params.num_workers >= 1);
  metrics::Registry& registry = metrics::Registry::Global();
  static metrics::Counter& shards_planned_total =
      registry.GetCounter("simj_dist_shards_planned_total");
  static metrics::Counter& shards_requeued_total =
      registry.GetCounter("simj_dist_shards_requeued_total");
  static metrics::Counter& worker_restarts_total =
      registry.GetCounter("simj_dist_worker_restarts_total");
  static metrics::Gauge& workers_gauge = registry.GetGauge("simj_dist_workers");

  WallTimer wall;
  trace::ScopedSpan span("sharded_simjoin", "dist");

  ShardPlanOptions plan_options;
  plan_options.max_pairs_per_shard = dist_params.max_pairs_per_shard;
  plan_options.use_index = dist_params.use_index;
  ShardPlan plan = PlanShards(d, u, params, plan_options);

  DistJoinResult out;
  out.join.stats = plan.pre_stats;
  out.join.explains = std::move(plan.pre_explains);

  // Workers share the dictionary concurrently (and process workers fork a
  // snapshot of it); freeze for the duration, like the parallel JoinPairs
  // path does.
  dict.Freeze();
  WorkerContext ctx;
  ctx.d = &d;
  ctx.u = &u;
  ctx.params = &params;
  ctx.dict = &dict;

  // Spawn workers before any dispatch thread exists: the first fork of
  // each process worker happens while this process is single-threaded.
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(static_cast<size_t>(dist_params.num_workers));
  for (int w = 0; w < dist_params.num_workers; ++w) {
    if (dist_params.transport == Transport::kProcess) {
      StatusOr<std::unique_ptr<ShardWorker>> worker = MakeProcessWorker(ctx, w);
      if (worker.ok()) {
        workers.push_back(std::move(worker).value());
        continue;
      }
      SIMJ_LOG(ERROR) << "dist: spawning process worker " << w
                      << " failed (" << worker.status().ToString()
                      << "); degrading this slot to the thread transport";
    }
    workers.push_back(MakeThreadWorker(ctx, w));
  }

  core::JoinProgress& progress = core::JoinProgress::Global();
  const bool stall_on = params.stall_warn_ms > 0.0;
  const bool heartbeats_on = stall_on || progress.heartbeats_requested();
  progress.BeginJoin(plan.planned_pairs, dist_params.num_workers,
                     heartbeats_on);
  workers_gauge.Set(static_cast<double>(dist_params.num_workers));

  Coordinator coordinator(plan, &workers, ctx, dist_params);
  out.dist = coordinator.Run(&out.join);

  progress.EndJoin();

  shards_planned_total.Add(out.dist.shards_planned);
  shards_requeued_total.Add(out.dist.shards_requeued);
  for (const WorkerReport& report : out.dist.workers) {
    worker_restarts_total.Add(report.restarts);
  }

  // The same join postcondition JoinPairs enforces, across the merge.
  SIMJ_DCHECK_EQ(out.join.stats.total_pairs,
                 out.join.stats.pruned_structural +
                     out.join.stats.pruned_probabilistic +
                     out.join.stats.candidates);
  SIMJ_DCHECK_LE(out.join.stats.results, out.join.stats.candidates);
  out.join.stats.wall_seconds = wall.ElapsedSeconds();
  return out;
}

}  // namespace simj::dist
