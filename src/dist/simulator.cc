#include "dist/simulator.h"

#include "util/rng.h"

namespace simj::dist {

namespace {

// SplitMix64 finalizer: decorrelates the (seed, shard_id, attempt) key into
// an independent stream seed, so neighboring shards/attempts do not share
// fault fates.
uint64_t MixKey(uint64_t seed, int shard_id, int attempt) {
  uint64_t z = seed;
  z += 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(shard_id) * 2654435761ull +
                               static_cast<uint64_t>(attempt) + 1ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultSpec ClusterSim::Decide(int shard_id, int attempt, int shard_pairs) {
  Rng rng(MixKey(options_.seed, shard_id, attempt));
  FaultSpec fault;
  // Fixed draw order keeps the plan stable if more fault kinds are added
  // after these.
  const bool die = rng.Bernoulli(options_.death_probability);
  const bool slow = rng.Bernoulli(options_.slow_probability);
  if (slow) {
    fault.delay_ms =
        options_.slow_min_ms +
        rng.UniformDouble() * (options_.slow_max_ms - options_.slow_min_ms);
    injected_delays_.fetch_add(1, std::memory_order_relaxed);
    injected_delay_us_.fetch_add(static_cast<int64_t>(fault.delay_ms * 1000.0),
                                 std::memory_order_relaxed);
  }
  if (die) {
    fault.die_after_pairs =
        static_cast<int>(rng.Uniform(0, shard_pairs > 0 ? shard_pairs : 0));
    injected_deaths_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

std::function<FaultSpec(int, int, int, int)> ClusterSim::Hook() {
  return [this](int /*worker*/, int shard_id, int attempt, int shard_pairs) {
    return Decide(shard_id, attempt, shard_pairs);
  };
}

double ClusterSim::injected_delay_ms() const {
  return static_cast<double>(
             injected_delay_us_.load(std::memory_order_relaxed)) /
         1000.0;
}

}  // namespace simj::dist
