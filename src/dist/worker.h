// Shard workers for the distributed join: one abstraction, two transports.
//
//   * kThread  — the shard is evaluated on the coordinator's dispatch
//     thread via core::EvaluatePairList; zero copies, counters land in the
//     process registry directly.
//   * kProcess — a fork()ed child (util/subprocess) inherits the workload
//     memory and serves shards over a length-prefixed pipe protocol; the
//     request carries only pair indices, the response only stats, matched
//     pairs, and explain records. Child-side counter increments die with
//     the child, so the coordinator replays the returned JoinStats into the
//     registry (see counts_in_process()).
//
// RunShard takes a FaultSpec so the deterministic cluster simulator
// (dist/simulator.h) can inject stragglers and mid-shard deaths through the
// exact production code path; production callers pass FaultSpec{}.
//
// RunShard also takes a SpanContext (DESIGN.md §10): when collect is set,
// the worker records the spans of this one shard execution via
// trace::BeginThreadCapture/EndThreadCapture, tags them with the given
// trace/parent-span ids, and returns them in ShardResult::spans — shipped
// inside the response frame for the process transport — so the coordinator
// can merge every worker's spans into one cluster-wide Chrome trace.

#ifndef SIMJ_DIST_WORKER_H_
#define SIMJ_DIST_WORKER_H_

#include <memory>
#include <vector>

#include "core/join.h"
#include "dist/shard.h"
#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"
#include "util/heap_profiler.h"
#include "util/profiler.h"
#include "util/status.h"
#include "util/trace.h"

namespace simj::dist {

enum class Transport {
  kThread = 0,  // in-process: shard runs on the dispatch thread
  kProcess,     // fork()ed child behind a frame pipe
};

const char* TransportName(Transport transport);

// Fault injected into a single shard execution (simulator only).
struct FaultSpec {
  // Sleep this long before evaluating (straggler). The coordinator
  // heartbeats the shard's first pair before RunShard, so the sleep ages
  // that heartbeat and the stall watchdog can see it.
  double delay_ms = 0.0;
  // >= 0: evaluate exactly min(die_after_pairs, |shard|) pairs, then die
  // mid-shard — the thread transport discards the partial result and
  // returns an error; the process transport _exit()s without responding,
  // so the parent sees EOF. Either way the shard is abandoned and the
  // coordinator requeues it. -1 disables.
  int die_after_pairs = -1;

  bool none() const { return delay_ms <= 0.0 && die_after_pairs < 0; }
};

// Cross-process trace context for one shard attempt (Dapper-style: the
// coordinator owns the attempt span; worker spans point at it through
// parent_span_id). Travels the request frame for the process transport.
struct SpanContext {
  bool collect = false;        // capture + ship this execution's spans
  uint64_t trace_id = 0;       // one id per sharded run
  uint64_t parent_span_id = 0; // the coordinator's attempt span
  // > 0 while the coordinator has a CPU capture armed (util/profiler):
  // workers ship their pending profile samples with the response — the
  // thread transport drains its own ring, a forked child arms its own
  // profiler at this frequency on first sight and drains every ring.
  // 0 (the default and the fallback path's value) ships nothing.
  int profile_hz = 0;
  // > 0 while the coordinator has a heap capture armed
  // (util/heap_profiler): same shipping contract as profile_hz — the
  // thread transport drains its own thread's heap entries per response, a
  // forked child arms its own heap profiler at this rate on first sight
  // and drains every thread's. Shipped counters are deltas since the
  // worker's previous drain. 0 ships nothing. Additive protocol field:
  // appended at the end of the request frame.
  int64_t heap_sample_bytes = 0;
};

// Immutable view of the join workload shared by every worker. The caller
// owns the pointees and keeps them alive for the workers' lifetime.
struct WorkerContext {
  const std::vector<graph::LabeledGraph>* d = nullptr;
  const std::vector<graph::UncertainGraph>* u = nullptr;
  const core::SimJParams* params = nullptr;
  const graph::LabelDictionary* dict = nullptr;
};

// Everything a completed shard contributes to the merge. pairs/explains
// are in shard-local evaluation order; the coordinator's merge sorts
// globally by (q_index, g_index).
struct ShardResult {
  int shard_id = -1;
  core::JoinStats stats;
  std::vector<core::MatchedPair> pairs;
  std::vector<core::PairExplain> explains;
  // Spans recorded during this execution (empty unless SpanContext.collect).
  // trace_id/parent_span_id are tagged from the request's SpanContext; the
  // coordinator re-files them under the worker's process lane.
  std::vector<trace::TraceEvent> spans;
  // CPU samples drained since this worker's previous response (empty
  // unless SpanContext.profile_hz > 0). The coordinator folds these into
  // the capture's "worker-N" section via prof::AccumulateRemoteSection.
  prof::SampleBatch profile;
  // Heap stack deltas drained since this worker's previous response
  // (empty unless SpanContext.heap_sample_bytes > 0); folded into the
  // heap capture's "worker-N" section via
  // heapprof::AccumulateRemoteSection. Appended at the end of the result
  // frame.
  heapprof::HeapBatch heap;
};

class ShardWorker {
 public:
  virtual ~ShardWorker() = default;

  // Blocking: evaluates `shard` and returns its result. A non-OK status
  // means the worker is broken (dead child, torn pipe, injected death) and
  // produced nothing usable — the coordinator requeues the shard and
  // decides whether to Restart() the worker.
  [[nodiscard]] virtual StatusOr<ShardResult> RunShard(
      const Shard& shard, const FaultSpec& fault, const SpanContext& ctx) = 0;

  // Brings a dead worker back (respawns the child for the process
  // transport; a no-op for the thread transport). Non-OK when the worker
  // cannot be revived.
  [[nodiscard]] virtual Status Restart() = 0;

  // True when this worker's EvaluatePair calls increment THIS process's
  // metrics registry (thread transport). False when the work happened in a
  // child whose counters died with it — the coordinator then replays the
  // returned JoinStats into the registry so progress/statusz stay live.
  virtual bool counts_in_process() const = 0;

  virtual Transport transport() const = 0;
};

// The dispatch-thread worker. `worker_index` is the logical worker slot
// used for heartbeats and stall attribution.
[[nodiscard]] std::unique_ptr<ShardWorker> MakeThreadWorker(
    const WorkerContext& ctx, int worker_index);

// Forks the serving child immediately (call before starting dispatch
// threads so the first fork happens while the process is single-threaded).
[[nodiscard]] StatusOr<std::unique_ptr<ShardWorker>> MakeProcessWorker(
    const WorkerContext& ctx, int worker_index);

}  // namespace simj::dist

#endif  // SIMJ_DIST_WORKER_H_
