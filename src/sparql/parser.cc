#include "sparql/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "util/strings.h"

namespace simj::sparql {

namespace {

struct Tokenizer {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Done() {
    SkipSpace();
    return pos >= text.size();
  }

  // Returns the next token: punctuation '{' '}' '.' as single chars, '<iri>'
  // as one token, otherwise a run of non-space non-punctuation characters.
  StatusOr<std::string> Next() {
    SkipSpace();
    if (pos >= text.size()) return InvalidArgumentError("unexpected end of query");
    char c = text[pos];
    if (c == '{' || c == '}' || c == '.') {
      ++pos;
      return std::string(1, c);
    }
    if (c == '<') {
      size_t end = text.find('>', pos);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated IRI");
      }
      std::string token(text.substr(pos, end - pos + 1));
      pos = end + 1;
      return token;
    }
    size_t begin = pos;
    while (pos < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[pos])) &&
           text[pos] != '{' && text[pos] != '}' && text[pos] != '.') {
      ++pos;
    }
    return std::string(text.substr(begin, pos - begin));
  }

  StatusOr<std::string> Peek() {
    size_t saved = pos;
    StatusOr<std::string> token = Next();
    pos = saved;
    return token;
  }
};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return ToLower(a) == ToLower(b);
}

// Strips angle brackets from IRIs; leaves variables and bare names alone.
std::string NormalizeTerm(const std::string& token) {
  if (token.size() >= 2 && token.front() == '<' && token.back() == '>') {
    return token.substr(1, token.size() - 2);
  }
  return token;
}

}  // namespace

StatusOr<ParsedQuery> ParseSparql(std::string_view text,
                                  graph::LabelDictionary& dict) {
  Tokenizer tok{text};
  std::unordered_map<std::string, std::string> prefixes;

  // PREFIX declarations.
  StatusOr<std::string> keyword = tok.Next();
  if (!keyword.ok()) return keyword.status();
  while (EqualsIgnoreCase(*keyword, "PREFIX")) {
    StatusOr<std::string> name = tok.Next();
    if (!name.ok()) return name.status();
    if (name->empty() || name->back() != ':') {
      return InvalidArgumentError("prefix name must end in ':', got '" +
                                  *name + "'");
    }
    StatusOr<std::string> iri = tok.Next();
    if (!iri.ok()) return iri.status();
    if (iri->size() < 2 || iri->front() != '<' || iri->back() != '>') {
      return InvalidArgumentError("prefix IRI must use angle brackets");
    }
    prefixes[name->substr(0, name->size() - 1)] =
        iri->substr(1, iri->size() - 2);
    keyword = tok.Next();
    if (!keyword.ok()) return keyword.status();
  }

  if (!EqualsIgnoreCase(*keyword, "SELECT")) {
    return InvalidArgumentError("expected SELECT, got '" + *keyword + "'");
  }

  // Expands "pre:name" using declared prefixes; leaves other terms alone.
  auto expand = [&](const std::string& term) {
    if (!term.empty() && term[0] == '?') return term;
    size_t colon = term.find(':');
    if (colon == std::string::npos) return term;
    auto it = prefixes.find(term.substr(0, colon));
    if (it == prefixes.end()) return term;
    return it->second + term.substr(colon + 1);
  };

  ParsedQuery query;
  bool first_select_token = true;
  while (true) {
    StatusOr<std::string> token = tok.Next();
    if (!token.ok()) return token.status();
    if (EqualsIgnoreCase(*token, "WHERE")) break;
    if (first_select_token && EqualsIgnoreCase(*token, "DISTINCT")) {
      query.distinct = true;
      first_select_token = false;
      continue;
    }
    first_select_token = false;
    if (token->empty() || (*token)[0] != '?') {
      return InvalidArgumentError("expected variable or WHERE, got '" +
                                  *token + "'");
    }
    query.select_vars.push_back(dict.Intern(*token));
  }
  if (query.select_vars.empty()) {
    return InvalidArgumentError("SELECT clause has no variables");
  }

  StatusOr<std::string> brace = tok.Next();
  if (!brace.ok()) return brace.status();
  if (*brace != "{") return InvalidArgumentError("expected '{'");

  while (true) {
    StatusOr<std::string> first = tok.Next();
    if (!first.ok()) return first.status();
    if (*first == "}") break;
    if (*first == ".") continue;  // tolerate stray separators
    StatusOr<std::string> second = tok.Next();
    if (!second.ok()) return second.status();
    StatusOr<std::string> third = tok.Next();
    if (!third.ok()) return third.status();
    if (*second == "}" || *second == "." || *third == "}" || *third == ".") {
      return InvalidArgumentError("incomplete triple pattern");
    }
    rdf::TriplePattern pattern;
    pattern.subject = dict.Intern(expand(NormalizeTerm(*first)));
    pattern.predicate = dict.Intern(expand(NormalizeTerm(*second)));
    pattern.object = dict.Intern(expand(NormalizeTerm(*third)));
    query.patterns.push_back(pattern);
  }
  if (query.patterns.empty()) {
    return InvalidArgumentError("empty WHERE clause");
  }
  if (!tok.Done()) {
    StatusOr<std::string> token = tok.Next();
    if (!token.ok()) return token.status();
    if (!EqualsIgnoreCase(*token, "LIMIT")) {
      return InvalidArgumentError("trailing tokens after '}'");
    }
    StatusOr<std::string> number = tok.Next();
    if (!number.ok()) return number.status();
    char* end = nullptr;
    long value = std::strtol(number->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value < 0) {
      return InvalidArgumentError("invalid LIMIT value '" + *number + "'");
    }
    query.limit = value;
    if (!tok.Done()) return InvalidArgumentError("trailing tokens after LIMIT");
  }
  return query;
}

std::string ToSparqlText(const ParsedQuery& query,
                         const graph::LabelDictionary& dict) {
  std::string out = "SELECT";
  if (query.distinct) out += " DISTINCT";
  for (rdf::TermId var : query.select_vars) {
    out += " " + dict.Name(var);
  }
  out += " WHERE { ";
  for (const rdf::TriplePattern& pattern : query.patterns) {
    out += dict.Name(pattern.subject) + " " + dict.Name(pattern.predicate) +
           " " + dict.Name(pattern.object) + " . ";
  }
  out += "}";
  if (query.limit >= 0) out += " LIMIT " + std::to_string(query.limit);
  return out;
}

QueryGraph BuildQueryGraph(
    const ParsedQuery& query, const graph::LabelDictionary& dict,
    const std::function<graph::LabelId(rdf::TermId)>* type_of) {
  QueryGraph out;
  std::unordered_map<rdf::TermId, int> vertex_of;
  auto vertex_for = [&](rdf::TermId term) {
    auto it = vertex_of.find(term);
    if (it != vertex_of.end()) return it->second;
    graph::LabelId label = term;
    if (!dict.IsWildcard(term) && type_of != nullptr) {
      graph::LabelId type = (*type_of)(term);
      if (type != graph::kInvalidLabel) label = type;
    }
    int v = out.graph.AddVertex(label);
    out.vertex_terms.push_back(term);
    vertex_of.emplace(term, v);
    return v;
  };
  for (const rdf::TriplePattern& pattern : query.patterns) {
    int src = vertex_for(pattern.subject);
    int dst = vertex_for(pattern.object);
    // Reflexive patterns (?x p ?x) have no graph-edit-distance meaning in
    // the paper's model; the vertex is kept, the self loop dropped.
    if (src != dst) out.graph.AddEdge(src, dst, pattern.predicate);
  }
  return out;
}

}  // namespace simj::sparql
