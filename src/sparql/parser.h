// Parser for the OPT-free SPARQL fragment the paper works with (basic graph
// patterns of SELECT queries) and conversion to query graphs.
//
// Accepted grammar (keywords case-insensitive):
//
//   query   := prefix* SELECT DISTINCT? var+ WHERE
//              '{' triple ( '.' triple )* '.'? '}' (LIMIT number)?
//   prefix  := PREFIX name ':' '<' iri '>'
//   triple  := term term term
//   term    := '?'name | '<' iri '>' | prefixed name | name
//
// Prefixed names ("dbo:Artist") are expanded against the declared
// prefixes. Terms are interned into the shared LabelDictionary; variables
// keep their leading '?', which makes them wildcards throughout the
// system.

#ifndef SIMJ_SPARQL_PARSER_H_
#define SIMJ_SPARQL_PARSER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace simj::sparql {

struct ParsedQuery {
  std::vector<rdf::TermId> select_vars;
  std::vector<rdf::TriplePattern> patterns;
  bool distinct = false;
  // Row cap from a LIMIT clause; -1 means unlimited. (The BGP evaluator
  // always returns distinct rows, so `distinct` only documents intent.)
  int64_t limit = -1;

  rdf::BgpQuery ToBgp() const { return rdf::BgpQuery{select_vars, patterns}; }
};

// Parses `text` into a query, interning all terms into `dict`.
StatusOr<ParsedQuery> ParseSparql(std::string_view text,
                                  graph::LabelDictionary& dict);

// Serializes a query back to SPARQL text.
std::string ToSparqlText(const ParsedQuery& query,
                         const graph::LabelDictionary& dict);

// A SPARQL query as a certain labeled graph (paper Section 2.1 Step 2) plus
// the provenance needed by template generation.
struct QueryGraph {
  graph::LabeledGraph graph;
  // Original term of each vertex (the entity, class, or variable).
  std::vector<rdf::TermId> vertex_terms;
};

// Builds the query graph: one vertex per distinct subject/object term, one
// directed edge per triple labeled with the predicate.
//
// `type_of` optionally rewrites a vertex's *display label*: the paper joins
// on the class of an entity rather than its identity ("Harvard_University"
// is labeled "University"), so callers pass a resolver backed by the
// knowledge base. Terms for which the resolver returns kInvalidLabel (and
// all variables) keep their own name as label. vertex_terms always keeps
// the original term.
QueryGraph BuildQueryGraph(
    const ParsedQuery& query, const graph::LabelDictionary& dict,
    const std::function<graph::LabelId(rdf::TermId)>* type_of = nullptr);

}  // namespace simj::sparql

#endif  // SIMJ_SPARQL_PARSER_H_
