// Semantic query graphs (paper Def. 1) and the rule-based question parser
// that extracts them.
//
// A semantic relation is a triple <rel, arg1, arg2> of phrases; the
// semantic query graph has one vertex per distinct argument phrase and one
// edge per relation. The parser handles the question grammar the workload
// generator emits (and some of what it doesn't — entity phrases containing
// connector words genuinely confuse it, which is the dominant failure mode
// the paper reports in its Fig. 18 analysis):
//
//   "which <class> <rel> <entity>?"                          single relation
//   "... <rel1> <e1> and <rel2> <e2>"                        star
//   "... <rel1> the <class2> that <rel2> <e2>"               chain
//   "who/what <rel> <entity>?", "give me all <class> ..."    variants

#ifndef SIMJ_NLP_SEMANTIC_GRAPH_H_
#define SIMJ_NLP_SEMANTIC_GRAPH_H_

#include <string>
#include <vector>

#include "nlp/lexicon.h"
#include "util/status.h"

namespace simj::nlp {

struct SemanticRelation {
  std::string rel_phrase;
  std::string arg1;
  std::string arg2;
};

struct SemanticArgument {
  std::string phrase;       // entity phrase, or class phrase for variables
  bool is_variable = false; // wh-target or chain-intermediate
};

struct SemanticQueryGraph {
  std::vector<SemanticArgument> arguments;
  struct Relation {
    int arg1 = -1;
    int arg2 = -1;
    std::string phrase;
  };
  std::vector<Relation> relations;
};

struct ParsedQuestion {
  SemanticQueryGraph graph;
  // Index of the wh-argument in graph.arguments (-1 if none detected).
  int wh_argument = -1;
  // Normalized tokens of the question (lowercased, punctuation stripped).
  std::vector<std::string> tokens;
};

// Normalizes a question: lowercase, strip trailing '?'/'.', tokenize.
std::vector<std::string> NormalizeQuestion(const std::string& question);

// Extracts the semantic query graph from a question using the lexicon's
// relation phrase inventory (longest-match) and connector words.
StatusOr<ParsedQuestion> ParseQuestion(const std::string& question,
                                       const Lexicon& lexicon);

}  // namespace simj::nlp

#endif  // SIMJ_NLP_SEMANTIC_GRAPH_H_
