// Syntactic dependency trees and tree edit distance (paper Section 2.2).
//
// The paper aligns a new question to a template's natural-language part by
// parsing both into dependency trees (Stanford parser in the paper, a
// deterministic shallow parser here — the tree shape is derived from the
// semantic relations) and finding the template with minimum tree edit
// distance. Slot filling then maps question phrases onto the template's
// slots; we do that with a token-level alignment DP that also yields the
// paper's matching proportion phi.

#ifndef SIMJ_NLP_DEPENDENCY_H_
#define SIMJ_NLP_DEPENDENCY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nlp/semantic_graph.h"

namespace simj::nlp {

// Token that matches any label/token at zero cost in trees and alignments.
inline constexpr const char* kSlotMarker = "<slot>";

struct DepTree {
  struct Node {
    std::string label;
    std::vector<int> children;
  };
  std::vector<Node> nodes;
  int root = -1;

  int size() const { return static_cast<int>(nodes.size()); }
};

// Deterministic dependency tree over the parsed question: the wh-argument
// is the root; each relation phrase depends on its first argument and
// governs its second.
DepTree BuildQuestionTree(const ParsedQuestion& question);

// Copy of `tree` with every node whose label appears in `slot_phrases`
// relabeled to kSlotMarker (the template side of the alignment).
DepTree SlottedTree(const DepTree& tree,
                    const std::vector<std::string>& slot_phrases);

// Zhang-Shasha ordered tree edit distance with unit costs; relabeling to or
// from kSlotMarker is free.
int TreeEditDistance(const DepTree& a, const DepTree& b);

struct TokenAlignment {
  // Edit cost outside slots (substitutions + insertions + deletions).
  int cost = 0;
  // phi: fraction of question tokens covered by the template (exact
  // matches plus slot-consumed tokens).
  double matching_proportion = 0.0;
  // Question phrase captured by each slot, indexed by slot number.
  std::vector<std::string> slot_phrases;
};

// Aligns template tokens (containing "<slot0>", "<slot1>", ... markers;
// each slot consumes one to three question tokens at zero cost) against
// question tokens. Ties in edit cost are broken toward more exact token
// matches, which keeps slot spans tight. When `slot_validator` is provided,
// a slot may only capture a span the validator accepts (TemplateQa passes a
// lexicon lookup, so slots only capture linkable phrases). Returns
// std::nullopt when no valid alignment exists.
std::optional<TokenAlignment> AlignTokens(
    const std::vector<std::string>& template_tokens, int num_slots,
    const std::vector<std::string>& question_tokens,
    const std::function<bool(const std::string&)>* slot_validator = nullptr);

}  // namespace simj::nlp

#endif  // SIMJ_NLP_DEPENDENCY_H_
