#include "nlp/lexicon.h"

#include <algorithm>

#include "util/strings.h"

namespace simj::nlp {

void Lexicon::AddEntityPhrase(const std::string& phrase, EntityLink link) {
  std::vector<EntityLink>& links = entities_[ToLower(phrase)];
  links.push_back(link);
  std::stable_sort(links.begin(), links.end(),
                   [](const EntityLink& a, const EntityLink& b) {
                     return a.confidence > b.confidence;
                   });
}

void Lexicon::AddRelationPhrase(const std::string& phrase,
                                PredicateLink link) {
  std::string key = ToLower(phrase);
  std::vector<PredicateLink>& links = relations_[key];
  links.push_back(link);
  std::stable_sort(links.begin(), links.end(),
                   [](const PredicateLink& a, const PredicateLink& b) {
                     return a.confidence > b.confidence;
                   });
  int tokens = static_cast<int>(SplitWhitespace(key).size());
  max_relation_tokens_ = std::max(max_relation_tokens_, tokens);
}

void Lexicon::AddClassPhrase(const std::string& phrase, ClassLink link) {
  classes_[ToLower(phrase)] = link;
}

const std::vector<EntityLink>* Lexicon::FindEntity(
    const std::string& phrase) const {
  auto it = entities_.find(ToLower(phrase));
  return it == entities_.end() ? nullptr : &it->second;
}

const std::vector<PredicateLink>* Lexicon::FindRelation(
    const std::string& phrase) const {
  auto it = relations_.find(ToLower(phrase));
  return it == relations_.end() ? nullptr : &it->second;
}

const ClassLink* Lexicon::FindClass(const std::string& phrase) const {
  std::string key = ToLower(phrase);
  auto it = classes_.find(key);
  if (it != classes_.end()) return &it->second;
  // Naive plural fallback: "politicians" -> "politician",
  // "universities" -> "university".
  if (key.size() > 3 && EndsWith(key, "ies")) {
    it = classes_.find(key.substr(0, key.size() - 3) + "y");
    if (it != classes_.end()) return &it->second;
  }
  if (key.size() > 1 && key.back() == 's') {
    it = classes_.find(key.substr(0, key.size() - 1));
    if (it != classes_.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace simj::nlp
