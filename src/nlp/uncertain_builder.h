// Uncertain graph generation from parsed questions (paper Section 2.1,
// Step 1).
//
// Vertex construction:
//   - the wh-argument becomes a wildcard vertex "?x"; when it carries a
//     class phrase ("which politician"), a certain class vertex is attached
//     via a `type` edge — mirroring how SPARQL query graphs render
//     `?x type Politician`;
//   - entity arguments become uncertain vertices whose alternatives are the
//     *classes* of the linked candidate entities with their confidences;
//   - chain intermediates become wildcard vertices with their class vertex.
//
// Edge labels take the top-confidence predicate of the relation phrase (the
// paper defers edge-label uncertainty; LiftUncertainEdges covers the
// general case).

#ifndef SIMJ_NLP_UNCERTAIN_BUILDER_H_
#define SIMJ_NLP_UNCERTAIN_BUILDER_H_

#include <string>
#include <vector>

#include "graph/label.h"
#include "graph/uncertain_graph.h"
#include "nlp/lexicon.h"
#include "nlp/semantic_graph.h"
#include "util/status.h"

namespace simj::nlp {

struct UncertainQuestionGraph {
  graph::UncertainGraph graph;
  // Argument phrase that produced each vertex ("" for class vertices and
  // variables introduced structurally).
  std::vector<std::string> vertex_phrases;
  std::vector<bool> vertex_is_variable;
  int wh_vertex = -1;
  // Candidate entities per vertex (empty for non-entity vertices), aligned
  // with the vertex's label alternatives.
  std::vector<std::vector<EntityLink>> vertex_entities;
};

struct UncertainBuilderOptions {
  // Keep at most this many entity-link alternatives per vertex.
  int max_alternatives = 5;
  // Name of the type predicate edge label.
  std::string type_predicate = "type";
};

// Builds the uncertain graph for a parsed question. Fails when a relation
// phrase has no predicate candidate or an entity phrase has no link.
StatusOr<UncertainQuestionGraph> BuildUncertainGraph(
    const ParsedQuestion& question, const Lexicon& lexicon,
    graph::LabelDictionary& dict,
    const UncertainBuilderOptions& options = UncertainBuilderOptions());

}  // namespace simj::nlp

#endif  // SIMJ_NLP_UNCERTAIN_BUILDER_H_
