#include "nlp/semantic_graph.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace simj::nlp {

namespace {

bool IsConnector(const std::string& token) {
  return token == "and" || token == "that";
}

bool IsFiller(const std::string& token) {
  return token == "the" || token == "a" || token == "an";
}

std::string JoinRange(const std::vector<std::string>& tokens, int begin,
                      int end) {
  std::string out;
  for (int i = begin; i < end; ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i];
  }
  return out;
}

// Strips leading articles from an argument phrase span.
std::pair<int, int> StripArticles(const std::vector<std::string>& tokens,
                                  int begin, int end) {
  while (begin < end && IsFiller(tokens[begin])) ++begin;
  return {begin, end};
}

}  // namespace

std::vector<std::string> NormalizeQuestion(const std::string& question) {
  std::string cleaned;
  cleaned.reserve(question.size());
  for (char c : question) {
    if (c == '?' || c == '.' || c == ',' || c == '!') continue;
    cleaned.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return SplitWhitespace(cleaned);
}

StatusOr<ParsedQuestion> ParseQuestion(const std::string& question,
                                       const Lexicon& lexicon) {
  ParsedQuestion parsed;
  parsed.tokens = NormalizeQuestion(question);
  const std::vector<std::string>& tokens = parsed.tokens;
  const int n = static_cast<int>(tokens.size());
  if (n == 0) return InvalidArgumentError("empty question");

  // Tries to match the longest relation phrase starting at `pos`; returns
  // its token length, or 0.
  auto match_relation = [&](int pos) -> int {
    int max_len = std::min(lexicon.max_relation_tokens(), n - pos);
    for (int len = max_len; len >= 1; --len) {
      if (lexicon.FindRelation(JoinRange(tokens, pos, pos + len)) !=
          nullptr) {
        return len;
      }
    }
    return 0;
  };

  // --- Head: the wh-argument ---
  int pos = 0;
  bool head_has_class = false;
  if (tokens[0] == "which") {
    pos = 1;
    head_has_class = true;
  } else if (tokens[0] == "who" || tokens[0] == "what") {
    pos = 1;
  } else if (n >= 3 && tokens[0] == "give" && tokens[1] == "me" &&
             tokens[2] == "all") {
    pos = 3;
    head_has_class = true;
  } else if (n >= 2 && tokens[0] == "list" && tokens[1] == "all") {
    pos = 2;
    head_has_class = true;
  } else {
    return InvalidArgumentError("unrecognized question head: '" + tokens[0] +
                                "'");
  }

  std::string wh_class;
  if (head_has_class) {
    int begin = pos;
    auto is_copula = [](const std::string& token) {
      return token == "is" || token == "are" || token == "was" ||
             token == "were";
    };
    while (pos < n && match_relation(pos) == 0 && !IsConnector(tokens[pos]) &&
           !is_copula(tokens[pos])) {
      ++pos;
    }
    wh_class = JoinRange(tokens, begin, pos);
    if (wh_class.empty()) {
      return InvalidArgumentError("missing class phrase after wh-word");
    }
    if (lexicon.FindClass(wh_class) == nullptr) {
      return InvalidArgumentError("unknown class phrase: '" + wh_class + "'");
    }
  }

  SemanticQueryGraph& graph = parsed.graph;
  graph.arguments.push_back(SemanticArgument{wh_class, /*is_variable=*/true});
  parsed.wh_argument = 0;

  // --- Relation clauses ---
  int attach = parsed.wh_argument;
  bool expect_relation = true;
  while (pos < n) {
    if (!expect_relation) break;
    // Tolerate copulas before the relation phrase ("is", "was") when the
    // phrase itself does not start with them.
    if (match_relation(pos) == 0 &&
        (tokens[pos] == "is" || tokens[pos] == "are" || tokens[pos] == "was" ||
         tokens[pos] == "were")) {
      ++pos;
    }
    int rel_len = match_relation(pos);
    if (rel_len == 0) {
      return InvalidArgumentError("no relation phrase at: '" +
                                  JoinRange(tokens, pos, std::min(n, pos + 3)) +
                                  "'");
    }
    std::string rel_phrase = JoinRange(tokens, pos, pos + rel_len);
    pos += rel_len;

    // Argument span: up to a connector or end of question.
    int arg_begin = pos;
    while (pos < n && !IsConnector(tokens[pos])) ++pos;
    auto [stripped_begin, stripped_end] = StripArticles(tokens, arg_begin, pos);
    std::string arg_phrase = JoinRange(tokens, stripped_begin, stripped_end);
    if (arg_phrase.empty()) {
      return InvalidArgumentError("relation '" + rel_phrase +
                                  "' has no argument");
    }

    std::string connector = pos < n ? tokens[pos] : "";
    if (pos < n) ++pos;

    // Classify the argument: entity phrase, or class phrase (a chain
    // intermediate variable, normally followed by "that").
    bool is_variable = false;
    if (lexicon.FindEntity(arg_phrase) != nullptr) {
      is_variable = false;
    } else if (lexicon.FindClass(arg_phrase) != nullptr) {
      is_variable = true;
    } else {
      return InvalidArgumentError("cannot link argument phrase: '" +
                                  arg_phrase + "'");
    }

    int arg_index = static_cast<int>(graph.arguments.size());
    graph.arguments.push_back(SemanticArgument{arg_phrase, is_variable});
    graph.relations.push_back(
        SemanticQueryGraph::Relation{attach, arg_index, rel_phrase});

    if (connector == "and") {
      attach = parsed.wh_argument;  // star: next constraint on the wh-var
      expect_relation = true;
    } else if (connector == "that") {
      attach = arg_index;  // chain: next relation hangs off this argument
      expect_relation = true;
    } else {
      expect_relation = false;
    }
  }

  if (graph.relations.empty()) {
    return InvalidArgumentError("no relations extracted");
  }
  return parsed;
}

}  // namespace simj::nlp
