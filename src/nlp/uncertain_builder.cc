#include "nlp/uncertain_builder.h"

#include <algorithm>

#include "util/check.h"

namespace simj::nlp {

namespace {

// Fresh variable names "?x", "?y", "?z", "?v3", ... so distinct variables
// stay distinct wildcards.
std::string VariableName(int index) {
  static const char* kNames[] = {"?x", "?y", "?z"};
  if (index < 3) return kNames[index];
  return "?v" + std::to_string(index);
}

}  // namespace

StatusOr<UncertainQuestionGraph> BuildUncertainGraph(
    const ParsedQuestion& question, const Lexicon& lexicon,
    graph::LabelDictionary& dict, const UncertainBuilderOptions& options) {
  UncertainQuestionGraph out;
  const SemanticQueryGraph& sq = question.graph;
  graph::LabelId type_label = dict.Intern(options.type_predicate);

  int next_variable = 0;
  std::vector<int> vertex_of_argument(sq.arguments.size(), -1);

  for (size_t i = 0; i < sq.arguments.size(); ++i) {
    const SemanticArgument& arg = sq.arguments[i];
    if (arg.is_variable) {
      // Wildcard vertex, optionally anchored to a class vertex by `type`.
      graph::LabelId var_label = dict.Intern(VariableName(next_variable++));
      int v = out.graph.AddCertainVertex(var_label);
      out.vertex_phrases.push_back(arg.phrase);
      out.vertex_is_variable.push_back(true);
      out.vertex_entities.emplace_back();
      vertex_of_argument[i] = v;
      if (static_cast<int>(i) == question.wh_argument) out.wh_vertex = v;
      if (!arg.phrase.empty()) {
        const ClassLink* link = lexicon.FindClass(arg.phrase);
        if (link == nullptr) {
          return NotFoundError("no class link for phrase: '" + arg.phrase +
                               "'");
        }
        int class_vertex = out.graph.AddCertainVertex(link->label);
        out.vertex_phrases.push_back(arg.phrase);
        out.vertex_is_variable.push_back(false);
        out.vertex_entities.emplace_back();
        out.graph.AddEdge(v, class_vertex, type_label);
      }
      continue;
    }
    // Entity argument: alternatives are candidate classes with confidences.
    const std::vector<EntityLink>* links = lexicon.FindEntity(arg.phrase);
    if (links == nullptr || links->empty()) {
      return NotFoundError("no entity link for phrase: '" + arg.phrase + "'");
    }
    std::vector<graph::LabelAlternative> alternatives;
    std::vector<EntityLink> kept;
    double mass = 0.0;
    for (const EntityLink& link : *links) {
      if (static_cast<int>(kept.size()) >= options.max_alternatives) break;
      // Merge candidates that share a class label (mutually exclusive
      // labels must be distinct).
      bool merged = false;
      for (size_t k = 0; k < alternatives.size(); ++k) {
        if (alternatives[k].label == link.type_label) {
          alternatives[k].prob += link.confidence;
          merged = true;
          break;
        }
      }
      if (!merged) {
        alternatives.push_back(
            graph::LabelAlternative{link.type_label, link.confidence});
        kept.push_back(link);
      }
      mass += link.confidence;
    }
    // Guard against confidence lists that sum above 1 (defensive: the
    // lexicon normally normalizes).
    if (mass > 1.0) {
      for (auto& alt : alternatives) alt.prob /= mass;
    }
    int v = out.graph.AddVertex(std::move(alternatives));
    out.vertex_phrases.push_back(arg.phrase);
    out.vertex_is_variable.push_back(false);
    out.vertex_entities.push_back(std::move(kept));
    vertex_of_argument[i] = v;
  }

  for (const SemanticQueryGraph::Relation& rel : sq.relations) {
    const std::vector<PredicateLink>* links = lexicon.FindRelation(rel.phrase);
    if (links == nullptr || links->empty()) {
      return NotFoundError("no predicate for relation phrase: '" +
                           rel.phrase + "'");
    }
    graph::LabelId predicate = links->front().predicate;
    int src = vertex_of_argument[rel.arg1];
    int dst = vertex_of_argument[rel.arg2];
    SIMJ_CHECK_GE(src, 0);
    SIMJ_CHECK_GE(dst, 0);
    if (src != dst) out.graph.AddEdge(src, dst, predicate);
  }
  // Entity-link confidences come from outside the system; re-validate the
  // Def. 4 invariants before the graph enters the join. Always on — this is
  // the trust boundary for question input.
  Status valid = out.graph.Validate(dict);
  if (!valid.ok()) return valid;
  return out;
}

}  // namespace simj::nlp
