// Phrase lexicon: the entity-linking and relation-paraphrasing substrate.
//
// The paper consumes off-the-shelf entity linking [4] and the relation
// paraphrase dictionary of gAnswer [33]; both produce *confidence-scored
// candidates*, which is exactly where the uncertainty in the uncertain
// graphs comes from. We reproduce that interface: a phrase maps to one or
// more candidate entities (each with its class and a confidence) or to one
// or more candidate predicates. The synthetic knowledge base populates the
// lexicon with controlled ambiguity.

#ifndef SIMJ_NLP_LEXICON_H_
#define SIMJ_NLP_LEXICON_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/label.h"
#include "rdf/triple_store.h"

namespace simj::nlp {

struct EntityLink {
  rdf::TermId entity = graph::kInvalidLabel;
  // Class label of the entity (the uncertain vertex label, Section 2.1).
  graph::LabelId type_label = graph::kInvalidLabel;
  double confidence = 0.0;
};

struct PredicateLink {
  rdf::TermId predicate = graph::kInvalidLabel;
  double confidence = 0.0;
};

struct ClassLink {
  rdf::TermId class_term = graph::kInvalidLabel;
  graph::LabelId label = graph::kInvalidLabel;
};

class Lexicon {
 public:
  Lexicon() = default;

  // Registers a candidate entity for `phrase`. Candidates are kept sorted
  // by descending confidence.
  void AddEntityPhrase(const std::string& phrase, EntityLink link);
  // Registers a candidate predicate for a relation phrase.
  void AddRelationPhrase(const std::string& phrase, PredicateLink link);
  // Registers a class phrase ("politician" -> class Politician).
  void AddClassPhrase(const std::string& phrase, ClassLink link);

  // Lookup; nullptr when the phrase is unknown.
  const std::vector<EntityLink>* FindEntity(const std::string& phrase) const;
  const std::vector<PredicateLink>* FindRelation(
      const std::string& phrase) const;
  const ClassLink* FindClass(const std::string& phrase) const;

  // Longest relation phrase, in tokens (parsers scan windows up to this).
  int max_relation_tokens() const { return max_relation_tokens_; }

  int num_entity_phrases() const {
    return static_cast<int>(entities_.size());
  }
  int num_relation_phrases() const {
    return static_cast<int>(relations_.size());
  }

 private:
  std::unordered_map<std::string, std::vector<EntityLink>> entities_;
  std::unordered_map<std::string, std::vector<PredicateLink>> relations_;
  std::unordered_map<std::string, ClassLink> classes_;
  int max_relation_tokens_ = 0;
};

}  // namespace simj::nlp

#endif  // SIMJ_NLP_LEXICON_H_
