#include "nlp/dependency.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/check.h"
#include "util/strings.h"

namespace simj::nlp {

namespace {

bool IsSlotToken(const std::string& token) {
  return StartsWith(token, "<slot") && EndsWith(token, ">");
}

int RenameCost(const std::string& a, const std::string& b) {
  if (a == b) return 0;
  if (a == kSlotMarker || b == kSlotMarker) return 0;
  if (IsSlotToken(a) || IsSlotToken(b)) return 0;
  return 1;
}

// Zhang-Shasha preprocessing: postorder labels, leftmost-leaf indices and
// keyroots (all 1-based).
struct ZsTree {
  std::vector<std::string> labels;  // [1..n]
  std::vector<int> lml;             // [1..n]
  std::vector<int> keyroots;
};

void ZsDfs(const DepTree& tree, int node, ZsTree& out, int& counter,
           std::vector<int>& lml_of_node) {
  int leftmost = -1;
  for (int child : tree.nodes[node].children) {
    ZsDfs(tree, child, out, counter, lml_of_node);
    if (leftmost == -1) leftmost = lml_of_node[child];
  }
  ++counter;
  lml_of_node[node] = leftmost == -1 ? counter : leftmost;
  out.labels[counter] = tree.nodes[node].label;
  out.lml[counter] = lml_of_node[node];
}

ZsTree BuildZsTree(const DepTree& tree) {
  ZsTree out;
  int n = tree.size();
  out.labels.resize(n + 1);
  out.lml.resize(n + 1);
  if (n == 0) return out;
  std::vector<int> lml_of_node(n, 0);
  int counter = 0;
  ZsDfs(tree, tree.root, out, counter, lml_of_node);
  SIMJ_CHECK_EQ(counter, n);
  // Keyroots: for each distinct leftmost-leaf value, the largest postorder
  // index carrying it.
  std::vector<int> last_with_lml(n + 1, 0);
  for (int i = 1; i <= n; ++i) last_with_lml[out.lml[i]] = i;
  for (int i = 1; i <= n; ++i) {
    if (last_with_lml[out.lml[i]] == i) out.keyroots.push_back(i);
  }
  return out;
}

}  // namespace

DepTree BuildQuestionTree(const ParsedQuestion& question) {
  const SemanticQueryGraph& sq = question.graph;
  DepTree tree;
  // One node per argument, one per relation.
  std::vector<int> arg_node(sq.arguments.size());
  for (size_t i = 0; i < sq.arguments.size(); ++i) {
    std::string label = sq.arguments[i].phrase;
    if (label.empty()) label = "wh";
    arg_node[i] = tree.size();
    tree.nodes.push_back(DepTree::Node{label, {}});
  }
  for (const SemanticQueryGraph::Relation& rel : sq.relations) {
    int rel_node = tree.size();
    tree.nodes.push_back(DepTree::Node{rel.phrase, {}});
    tree.nodes[arg_node[rel.arg1]].children.push_back(rel_node);
    tree.nodes[rel_node].children.push_back(arg_node[rel.arg2]);
  }
  tree.root = question.wh_argument >= 0 ? arg_node[question.wh_argument] : 0;
  return tree;
}

DepTree SlottedTree(const DepTree& tree,
                    const std::vector<std::string>& slot_phrases) {
  DepTree out = tree;
  for (DepTree::Node& node : out.nodes) {
    for (const std::string& phrase : slot_phrases) {
      if (node.label == phrase) {
        node.label = kSlotMarker;
        break;
      }
    }
  }
  return out;
}

int TreeEditDistance(const DepTree& a, const DepTree& b) {
  const int n = a.size();
  const int m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  ZsTree ta = BuildZsTree(a);
  ZsTree tb = BuildZsTree(b);

  std::vector<std::vector<int>> td(n + 1, std::vector<int>(m + 1, 0));

  for (int k1 : ta.keyroots) {
    for (int k2 : tb.keyroots) {
      int l1 = ta.lml[k1];
      int l2 = tb.lml[k2];
      int rows = k1 - l1 + 2;
      int cols = k2 - l2 + 2;
      std::vector<std::vector<int>> fd(rows, std::vector<int>(cols, 0));
      for (int di = 1; di < rows; ++di) fd[di][0] = fd[di - 1][0] + 1;
      for (int dj = 1; dj < cols; ++dj) fd[0][dj] = fd[0][dj - 1] + 1;
      for (int di = 1; di < rows; ++di) {
        int i = l1 + di - 1;
        for (int dj = 1; dj < cols; ++dj) {
          int j = l2 + dj - 1;
          if (ta.lml[i] == l1 && tb.lml[j] == l2) {
            fd[di][dj] = std::min(
                {fd[di - 1][dj] + 1, fd[di][dj - 1] + 1,
                 fd[di - 1][dj - 1] + RenameCost(ta.labels[i], tb.labels[j])});
            td[i][j] = fd[di][dj];
          } else {
            int pi = ta.lml[i] - l1;  // forest prefix before subtree of i
            int pj = tb.lml[j] - l2;
            fd[di][dj] = std::min(
                {fd[di - 1][dj] + 1, fd[di][dj - 1] + 1,
                 fd[pi][pj] + td[i][j]});
          }
        }
      }
    }
  }
  return td[n][m];
}

std::optional<TokenAlignment> AlignTokens(
    const std::vector<std::string>& template_tokens, int num_slots,
    const std::vector<std::string>& question_tokens,
    const std::function<bool(const std::string&)>* slot_validator) {
  const int t = static_cast<int>(template_tokens.size());
  const int q = static_cast<int>(question_tokens.size());
  constexpr int kInf = std::numeric_limits<int>::max() / 4;

  // Moves, in preference order on full ties.
  enum Move : uint8_t { kNone, kMatch, kSlot, kSubst, kDelete, kInsert };
  struct Cell {
    int cost = kInf;
    int matches = -1;  // exact token matches along the best path
    Move move = kNone;
    int consumed = 0;  // for kSlot: question tokens consumed
  };
  std::vector<std::vector<Cell>> dp(t + 1, std::vector<Cell>(q + 1));
  dp[0][0].cost = 0;
  dp[0][0].matches = 0;

  // Lower cost wins; on ties, more exact matches (tighter slot spans and
  // better phi); on full ties, the earlier move in the enum.
  auto relax = [](Cell& cell, int cost, int matches, Move move,
                  int consumed) {
    if (cost < cell.cost ||
        (cost == cell.cost && matches > cell.matches) ||
        (cost == cell.cost && matches == cell.matches && move < cell.move)) {
      cell.cost = cost;
      cell.matches = matches;
      cell.move = move;
      cell.consumed = consumed;
    }
  };

  for (int i = 0; i <= t; ++i) {
    for (int j = 0; j <= q; ++j) {
      if (dp[i][j].cost >= kInf) continue;
      int cost = dp[i][j].cost;
      int matches = dp[i][j].matches;
      if (i < t) {
        if (IsSlotToken(template_tokens[i])) {
          // A slot captures a short phrase (entity phrases are at most a
          // few tokens); longer spans must pay as insertions, so partial
          // matches genuinely lower phi. With a validator, only linkable
          // spans qualify.
          constexpr int kMaxSlotTokens = 3;
          std::string span;
          for (int consume = 1;
               consume <= kMaxSlotTokens && j + consume <= q; ++consume) {
            if (!span.empty()) span += ' ';
            span += question_tokens[j + consume - 1];
            if (slot_validator != nullptr && !(*slot_validator)(span)) {
              continue;
            }
            relax(dp[i + 1][j + consume], cost, matches, kSlot, consume);
          }
        } else if (j < q) {
          if (template_tokens[i] == question_tokens[j]) {
            relax(dp[i + 1][j + 1], cost, matches + 1, kMatch, 0);
          } else {
            relax(dp[i + 1][j + 1], cost + 1, matches, kSubst, 0);
          }
        }
        relax(dp[i + 1][j], cost + 1, matches, kDelete, 0);
      }
      if (j < q) relax(dp[i][j + 1], cost + 1, matches, kInsert, 0);
    }
  }

  if (dp[t][q].cost >= kInf) return std::nullopt;

  // Backtrack: collect slot phrases and coverage.
  TokenAlignment result;
  result.cost = dp[t][q].cost;
  result.slot_phrases.assign(num_slots, "");
  int covered = 0;
  int i = t;
  int j = q;
  while (i > 0 || j > 0) {
    const Cell& cell = dp[i][j];
    switch (cell.move) {
      case kMatch:
        ++covered;
        --i;
        --j;
        break;
      case kSubst:
        --i;
        --j;
        break;
      case kSlot: {
        std::string phrase;
        for (int k = j - cell.consumed; k < j; ++k) {
          if (!phrase.empty()) phrase += ' ';
          phrase += question_tokens[k];
        }
        covered += cell.consumed;
        // Slot index from the marker "<slotK>".
        const std::string& marker = template_tokens[i - 1];
        int slot_index =
            std::atoi(marker.substr(5, marker.size() - 6).c_str());
        if (slot_index >= 0 && slot_index < num_slots) {
          result.slot_phrases[slot_index] = phrase;
        }
        j -= cell.consumed;
        --i;
        break;
      }
      case kDelete:
        --i;
        break;
      case kInsert:
        --j;
        break;
      case kNone:
        SIMJ_CHECK(false);
    }
  }
  for (const std::string& phrase : result.slot_phrases) {
    if (phrase.empty()) return std::nullopt;  // a slot captured nothing
  }
  result.matching_proportion =
      q == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(q);
  return result;
}

}  // namespace simj::nlp
