// Lower bounds on graph edit distance.
//
// For certain graphs:
//   - CountLowerBound: vertex/edge count difference (Zeng et al. [29]).
//   - LabelMultisetLowerBound: label multiset difference (Zhao et al. [31]).
//   - CssLowerBound: the paper's common-structural-subgraph bound (Thm. 1),
//     provably at least as tight as the other two global filters (Thm. 2).
//
// For uncertain graphs:
//   - CssLowerBoundUncertain (Thm. 3): one bound valid for *every* possible
//     world, built from the maximum matching in the vertex-label bipartite
//     graph (Def. 10). This is the structural pruning rule of the join: if
//     the bound exceeds tau, SimP_tau(q, g) = 0 and the pair is pruned.

#ifndef SIMJ_GED_LOWER_BOUNDS_H_
#define SIMJ_GED_LOWER_BOUNDS_H_

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::ged {

// | |V(a)| - |V(b)| | + | |E(a)| - |E(b)| |.
[[nodiscard]] int CountLowerBound(const graph::LabeledGraph& a,
                    const graph::LabeledGraph& b);

// max(|V(a)|,|V(b)|) - lambda_V + max(|E(a)|,|E(b)|) - lambda_E, where
// lambda are the wildcard-aware common label counts.
[[nodiscard]] int LabelMultisetLowerBound(const graph::LabeledGraph& a,
                            const graph::LabeledGraph& b,
                            const graph::LabelDictionary& dict);

// The c-star bound of Zeng et al. [29] for certain graphs: minimum-cost
// assignment between the graphs' stars (a vertex with its incident edge
// labels and neighbor labels), normalized by max(4, max_degree + 1). An
// n-gram-style filter, provided for the related-work ablations.
[[nodiscard]] int CStarLowerBound(const graph::LabeledGraph& a,
                    const graph::LabeledGraph& b,
                    const graph::LabelDictionary& dict);

// The CSS bound for certain graphs (Thm. 1):
//   |V(big)| + |E(big)| - lambda_E + ceil(dif/2) - lambda_V
// where `big` is the graph with more vertices (when the vertex counts tie,
// both orientations are valid and the larger bound is returned).
[[nodiscard]] int CssLowerBound(const graph::LabeledGraph& a, const graph::LabeledGraph& b,
                  const graph::LabelDictionary& dict);

// Number of common vertex labels lambda_V(q, g) maximized over all possible
// worlds of g: maximum matching of the vertex-label bipartite graph
// (Def. 10). Exposed for tests and for the probabilistic bound.
[[nodiscard]] int MaxCommonVertexLabels(const graph::LabeledGraph& q,
                          const graph::UncertainGraph& g,
                          const graph::LabelDictionary& dict);

// The label-independent part of the uncertain CSS bound:
//   C(q, g) = |V| + |E| - lambda_E + ceil(dif/2)
// with |V| = max vertex count and |E| the edge count of the graph with more
// vertices (Thm. 3/4). The uncertain CSS bound is C(q, g) - lambda_V(q, g).
[[nodiscard]] int CssStructuralConstant(const graph::LabeledGraph& q,
                          const graph::UncertainGraph& g,
                          const graph::LabelDictionary& dict);

// The CSS bound for an uncertain graph (Thm. 3): valid lower bound on
// ged(q, pw(g)) for every possible world pw(g).
[[nodiscard]] int CssLowerBoundUncertain(const graph::LabeledGraph& q,
                           const graph::UncertainGraph& g,
                           const graph::LabelDictionary& dict);

}  // namespace simj::ged

#endif  // SIMJ_GED_LOWER_BOUNDS_H_
