// Exact minimum graph edit distance (GED) between certain graphs.
//
// Edit operations and unit costs (paper Section 3.1.2):
//   - insert/delete an isolated labeled vertex          cost 1
//   - insert/delete a labeled edge                      cost 1
//   - substitute a vertex or edge label                 cost 1
// Wildcard labels ("?x") substitute against anything at cost 0.
//
// The solver is the standard A* search over prefix vertex mappings with an
// admissible label-multiset heuristic (a relaxation of the bipartite
// heuristic of Riesen & Bunke). BoundedGed stops as soon as the optimum
// provably exceeds the threshold, which is what the join's verification
// phase needs. The optimal vertex mapping is returned because template
// generation (paper Section 2.1 Step 3) is built from it.

#ifndef SIMJ_GED_EDIT_DISTANCE_H_
#define SIMJ_GED_EDIT_DISTANCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "util/status.h"

namespace simj::ged {

struct GedResult {
  // The minimum edit distance.
  int distance = 0;
  // mapping[u] = vertex of `b` that vertex u of `a` maps to, or -1 when u
  // is deleted. Unmapped vertices of `b` are insertions.
  std::vector<int> mapping;
};

struct GedOptions {
  // Safety valve for pathological searches. When the A* search expands more
  // states than this, BoundedGed gives up and reports "above threshold"
  // while setting *aborted (callers track this in their statistics; the
  // join treats it as a non-match, which the benchmarks document).
  int64_t max_expansions = 5'000'000;
};

// Computes ged(a, b) if it is <= tau, returning std::nullopt otherwise.
// Requires tau >= 0 and |V(b)| <= 64.
[[nodiscard]] std::optional<GedResult> BoundedGed(const graph::LabeledGraph& a,
                                    const graph::LabeledGraph& b, int tau,
                                    const graph::LabelDictionary& dict,
                                    const GedOptions& options = GedOptions(),
                                    bool* aborted = nullptr);

// Computes the exact ged(a, b) with no threshold.
[[nodiscard]] GedResult ExactGed(const graph::LabeledGraph& a, const graph::LabeledGraph& b,
                   const graph::LabelDictionary& dict,
                   const GedOptions& options = GedOptions());

// Cost of substituting label `from` by label `to`: 0 when they match
// (equal or wildcard), else 1.
[[nodiscard]] inline int SubstitutionCost(const graph::LabelDictionary& dict,
                            graph::LabelId from, graph::LabelId to) {
  return dict.Matches(from, to) ? 0 : 1;
}

// Edit cost of transforming the multiset of parallel edge labels `from`
// into `to`: max(|from|, |to|) minus the zero-cost matchable pairs.
[[nodiscard]] int EdgeSetCost(const std::vector<graph::LabelId>& from,
                const std::vector<graph::LabelId>& to,
                const graph::LabelDictionary& dict);

// A trivially valid upper bound on ged(a, b): delete everything in `a`,
// insert everything in `b`. Used as the open threshold for ExactGed.
[[nodiscard]] int TrivialUpperBound(const graph::LabeledGraph& a,
                      const graph::LabeledGraph& b);

// Exact edit cost induced by a *given* vertex mapping (mapping[u] = vertex
// of `b`, or -1 to delete u; b-vertices not covered are insertions). Every
// mapping's cost upper-bounds the true GED; the optimal mapping attains it.
[[nodiscard]] int MappingCost(const graph::LabeledGraph& a, const graph::LabeledGraph& b,
                const std::vector<int>& mapping,
                const graph::LabelDictionary& dict);

// Postcondition validator for a GED solver result (the debug build runs it
// after every successful BoundedGed/ExactGed call; tests call it directly).
// Checks, in order:
//   - the mapping is shaped like a function V(a) -> V(b) u {delete}: right
//     size, in-range targets, no two a-vertices sharing an image;
//   - the returned distance equals MappingCost(a, b, mapping) — the mapping
//     must *witness* the distance, not just accompany it;
//   - the sandwich CssLowerBound <= distance <= GreedyGedUpperBound, i.e.
//     the Lemma 1/2-style bounds bracket the claimed optimum.
// Returns the first violation as a descriptive non-OK status.
Status ValidateGedResult(const graph::LabeledGraph& a,
                         const graph::LabeledGraph& b, const GedResult& result,
                         const graph::LabelDictionary& dict);

// Fast upper bound on ged(a, b): the cost of the assignment that minimizes
// per-vertex substitution + local edge-degree costs (the bipartite
// approximation of Riesen & Bunke), evaluated exactly via MappingCost.
// Verification uses it to accept worlds without running A*:
//   lower bound > tau  -> world fails;  upper bound <= tau -> world passes.
// When `mapping` is non-null it receives the witnessing vertex map.
[[nodiscard]] int GreedyGedUpperBound(const graph::LabeledGraph& a,
                        const graph::LabeledGraph& b,
                        const graph::LabelDictionary& dict,
                        std::vector<int>* mapping = nullptr);

}  // namespace simj::ged

#endif  // SIMJ_GED_EDIT_DISTANCE_H_
