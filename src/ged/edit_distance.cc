#include "ged/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "ged/lower_bounds.h"
#include "matching/hungarian.h"
#include "util/check.h"
#include "util/metrics.h"

namespace simj::ged {

namespace {

using graph::LabelCounts;
using graph::LabeledGraph;
using graph::LabelDictionary;
using graph::LabelId;

// Search state: vertices of `a` (in a fixed processing order) mapped one by
// one to distinct vertices of `b` or deleted (-1). `used` is a bitmask over
// b's vertices.
struct State {
  int f = 0;      // g_cost + heuristic
  int g_cost = 0; // cost of the decided prefix
  int depth = 0;  // number of a-vertices decided
  uint64_t used = 0;
  std::vector<int> assignment;  // size == depth, values: b-vertex or -1
};

struct StateOrder {
  bool operator()(const State& lhs, const State& rhs) const {
    if (lhs.f != rhs.f) return lhs.f > rhs.f;   // min-heap on f
    return lhs.depth < rhs.depth;               // prefer deeper states
  }
};

// Precomputed per-graph data reused across the search.
struct SearchContext {
  const LabeledGraph& a;
  const LabeledGraph& b;
  const LabelDictionary& dict;
  std::vector<int> order;  // processing order of a's vertices

  // pending_vertex_labels[d]: multiset of labels of a-vertices not yet
  // decided at depth d (i.e. order[d..]).
  std::vector<LabelCounts> pending_vertex_labels;
  // pending_edge_labels[d]: labels of a-edges with at least one endpoint
  // not yet decided at depth d.
  std::vector<LabelCounts> pending_edge_labels;
  std::vector<int> pending_edge_total;  // sizes of the multisets above

  // position_in_order[v] = depth at which a-vertex v is decided.
  std::vector<int> position_in_order;
};

SearchContext BuildContext(const LabeledGraph& a, const LabeledGraph& b,
                           const LabelDictionary& dict) {
  SearchContext ctx{a, b, dict, {}, {}, {}, {}, {}};
  const int n = a.num_vertices();
  ctx.order.resize(n);
  for (int i = 0; i < n; ++i) ctx.order[i] = i;
  // High-degree vertices first: they constrain edge costs early.
  std::sort(ctx.order.begin(), ctx.order.end(), [&](int x, int y) {
    if (a.degree(x) != a.degree(y)) return a.degree(x) > a.degree(y);
    return x < y;
  });
  ctx.position_in_order.assign(n, 0);
  for (int d = 0; d < n; ++d) ctx.position_in_order[ctx.order[d]] = d;

  ctx.pending_vertex_labels.resize(n + 1);
  for (int d = n - 1; d >= 0; --d) {
    ctx.pending_vertex_labels[d] = ctx.pending_vertex_labels[d + 1];
    ++ctx.pending_vertex_labels[d][a.vertex_label(ctx.order[d])];
  }

  ctx.pending_edge_labels.resize(n + 1);
  ctx.pending_edge_total.assign(n + 1, 0);
  for (int d = 0; d <= n; ++d) {
    for (const graph::Edge& e : a.edges()) {
      // Pending at depth d iff either endpoint is decided at position >= d.
      if (ctx.position_in_order[e.src] >= d ||
          ctx.position_in_order[e.dst] >= d) {
        ++ctx.pending_edge_labels[d][e.label];
        ++ctx.pending_edge_total[d];
      }
    }
  }
  return ctx;
}

// Admissible heuristic: label-multiset relaxation over the not-yet-decided
// part of `a` and the not-yet-used part of `b`.
int Heuristic(const SearchContext& ctx, int depth, uint64_t used) {
  const int pending_a_vertices = ctx.a.num_vertices() - depth;
  LabelCounts b_vertex_labels;
  int pending_b_vertices = 0;
  for (int v = 0; v < ctx.b.num_vertices(); ++v) {
    if (used & (uint64_t{1} << v)) continue;
    ++b_vertex_labels[ctx.b.vertex_label(v)];
    ++pending_b_vertices;
  }
  int vertex_cost =
      std::max(pending_a_vertices, pending_b_vertices) -
      MatchableLabelCount(ctx.pending_vertex_labels[depth], b_vertex_labels,
                          ctx.dict);

  LabelCounts b_edge_labels;
  int pending_b_edges = 0;
  for (const graph::Edge& e : ctx.b.edges()) {
    bool src_used = (used >> e.src) & 1;
    bool dst_used = (used >> e.dst) & 1;
    if (src_used && dst_used) continue;
    ++b_edge_labels[e.label];
    ++pending_b_edges;
  }
  int edge_cost =
      std::max(ctx.pending_edge_total[depth], pending_b_edges) -
      MatchableLabelCount(ctx.pending_edge_labels[depth], b_edge_labels,
                          ctx.dict);
  return vertex_cost + edge_cost;
}

// Incremental cost of deciding a-vertex `u` (at `depth`) to map to b-vertex
// `v` (or -1): vertex substitution/deletion plus edge costs against every
// previously decided a-vertex.
int ExtensionCost(const SearchContext& ctx, const State& state, int u,
                  int v) {
  int cost = 0;
  if (v < 0) {
    cost += 1;  // delete u
  } else {
    cost += SubstitutionCost(ctx.dict, ctx.a.vertex_label(u),
                             ctx.b.vertex_label(v));
  }
  for (int d = 0; d < state.depth; ++d) {
    int prev_u = ctx.order[d];
    int prev_v = state.assignment[d];
    // Both directions between the pair.
    std::vector<LabelId> a_out = ctx.a.EdgeLabelsBetween(u, prev_u);
    std::vector<LabelId> a_in = ctx.a.EdgeLabelsBetween(prev_u, u);
    if (v < 0 || prev_v < 0) {
      cost += static_cast<int>(a_out.size() + a_in.size());
      continue;
    }
    std::vector<LabelId> b_out = ctx.b.EdgeLabelsBetween(v, prev_v);
    std::vector<LabelId> b_in = ctx.b.EdgeLabelsBetween(prev_v, v);
    cost += EdgeSetCost(a_out, b_out, ctx.dict);
    cost += EdgeSetCost(a_in, b_in, ctx.dict);
  }
  return cost;
}

// Flushes a locally accumulated count into a shared counter on scope exit,
// so the A* hot loop touches no atomics per expansion.
class CounterFlusher {
 public:
  CounterFlusher(metrics::Counter& counter, const int64_t& value)
      : counter_(counter), value_(value) {}
  ~CounterFlusher() {
    if (value_ > 0) counter_.Add(value_);
  }

 private:
  metrics::Counter& counter_;
  const int64_t& value_;
};

// Publishes a locally tracked high-water mark into a gauge on scope exit
// (one UpdateMax per call, whichever return path is taken).
class GaugeMaxFlusher {
 public:
  GaugeMaxFlusher(metrics::Gauge& gauge, const size_t& value)
      : gauge_(gauge), value_(value) {}
  ~GaugeMaxFlusher() { gauge_.UpdateMax(static_cast<double>(value_)); }

 private:
  metrics::Gauge& gauge_;
  const size_t& value_;
};

// Cost of completing a full assignment: insert every unused b-vertex and
// every b-edge with at least one unused endpoint.
int CompletionCost(const SearchContext& ctx, uint64_t used) {
  int cost = 0;
  for (int v = 0; v < ctx.b.num_vertices(); ++v) {
    if (!((used >> v) & 1)) ++cost;
  }
  for (const graph::Edge& e : ctx.b.edges()) {
    if (!((used >> e.src) & 1) || !((used >> e.dst) & 1)) ++cost;
  }
  return cost;
}

}  // namespace

int EdgeSetCost(const std::vector<LabelId>& from,
                const std::vector<LabelId>& to,
                const LabelDictionary& dict) {
  if (from.empty() && to.empty()) return 0;
  LabelCounts from_counts;
  for (LabelId l : from) ++from_counts[l];
  LabelCounts to_counts;
  for (LabelId l : to) ++to_counts[l];
  int matchable = MatchableLabelCount(from_counts, to_counts, dict);
  return static_cast<int>(std::max(from.size(), to.size())) - matchable;
}

int TrivialUpperBound(const LabeledGraph& a, const LabeledGraph& b) {
  return a.num_vertices() + a.num_edges() + b.num_vertices() + b.num_edges();
}

std::optional<GedResult> BoundedGed(const LabeledGraph& a,
                                    const LabeledGraph& b, int tau,
                                    const LabelDictionary& dict,
                                    const GedOptions& options,
                                    bool* aborted) {
  SIMJ_CHECK_GE(tau, 0);
  SIMJ_CHECK_LE(b.num_vertices(), 64);
  static metrics::Counter& calls_total =
      metrics::Registry::Global().GetCounter("simj_ged_calls_total");
  static metrics::Counter& expansions_total =
      metrics::Registry::Global().GetCounter("simj_ged_expansions_total");
  static metrics::Counter& aborted_total =
      metrics::Registry::Global().GetCounter("simj_ged_aborted_total");
  static metrics::Gauge& open_list_peak =
      metrics::Registry::Global().GetGauge("simj_ged_open_list_peak");
  calls_total.Increment();
  if (aborted != nullptr) *aborted = false;

  SearchContext ctx = BuildContext(a, b, dict);
  const int n = a.num_vertices();

  if (n == 0) {
    // Everything in b must be inserted.
    int distance = b.num_vertices() + b.num_edges();
    if (distance > tau) return std::nullopt;
    return GedResult{distance, {}};
  }

  std::priority_queue<State, std::vector<State>, StateOrder> open;
  {
    State root;
    root.f = Heuristic(ctx, 0, 0);
    if (root.f > tau) return std::nullopt;
    open.push(std::move(root));
  }

  int64_t expansions = 0;
  CounterFlusher flush_expansions(expansions_total, expansions);
  size_t open_peak = open.size();
  GaugeMaxFlusher flush_open_peak(open_list_peak, open_peak);
  while (!open.empty()) {
    State state = open.top();
    open.pop();
    if (state.f > tau) return std::nullopt;  // best possible exceeds tau

    if (state.depth == n) {
      // Completion cost was already folded in when the last vertex was
      // decided (see below), so this state is a full solution.
      GedResult result;
      result.distance = state.g_cost;
      result.mapping.assign(n, -1);
      for (int d = 0; d < n; ++d) {
        result.mapping[ctx.order[d]] = state.assignment[d];
      }
      // Debug-mode postcondition: the mapping witnesses the distance and
      // the distance sits inside the lower/upper bound sandwich.
      SIMJ_DCHECK_OK(ValidateGedResult(a, b, result, dict));
      SIMJ_DCHECK_LE(result.distance, tau);
      return result;
    }

    if (++expansions > options.max_expansions) {
      aborted_total.Increment();
      if (aborted != nullptr) *aborted = true;
      return std::nullopt;
    }

    int u = ctx.order[state.depth];
    // Candidate images: every unused b-vertex, plus deletion.
    for (int v = -1; v < b.num_vertices(); ++v) {
      if (v >= 0 && ((state.used >> v) & 1)) continue;
      State next;
      next.depth = state.depth + 1;
      next.used = state.used | (v >= 0 ? (uint64_t{1} << v) : 0);
      next.assignment = state.assignment;
      next.assignment.push_back(v);
      next.g_cost = state.g_cost + ExtensionCost(ctx, state, u, v);
      if (next.depth == n) {
        next.g_cost += CompletionCost(ctx, next.used);
        next.f = next.g_cost;
      } else {
        next.f = next.g_cost + Heuristic(ctx, next.depth, next.used);
      }
      if (next.f <= tau) {
        open.push(std::move(next));
        if (open.size() > open_peak) open_peak = open.size();
      }
    }
  }
  return std::nullopt;
}

int MappingCost(const LabeledGraph& a, const LabeledGraph& b,
                const std::vector<int>& mapping,
                const LabelDictionary& dict) {
  SIMJ_CHECK_EQ(static_cast<int>(mapping.size()), a.num_vertices());
  int cost = 0;
  std::vector<bool> used(b.num_vertices(), false);
  for (int u = 0; u < a.num_vertices(); ++u) {
    int v = mapping[u];
    if (v < 0) {
      cost += 1;  // delete u
      continue;
    }
    SIMJ_CHECK(v < b.num_vertices());
    SIMJ_CHECK(!used[v]);
    used[v] = true;
    cost += SubstitutionCost(dict, a.vertex_label(u), b.vertex_label(v));
  }
  for (int v = 0; v < b.num_vertices(); ++v) {
    if (!used[v]) cost += 1;  // insert v
  }
  // Edge costs: every ordered pair of a-vertices against its image pair;
  // b-edges touching an uncovered vertex are insertions.
  for (int u1 = 0; u1 < a.num_vertices(); ++u1) {
    for (int u2 = 0; u2 < a.num_vertices(); ++u2) {
      if (u1 == u2) continue;
      std::vector<graph::LabelId> a_labels = a.EdgeLabelsBetween(u1, u2);
      int v1 = mapping[u1];
      int v2 = mapping[u2];
      if (v1 < 0 || v2 < 0) {
        cost += static_cast<int>(a_labels.size());
      } else {
        cost += EdgeSetCost(a_labels, b.EdgeLabelsBetween(v1, v2), dict);
      }
    }
  }
  for (const graph::Edge& e : b.edges()) {
    if (!used[e.src] || !used[e.dst]) cost += 1;
  }
  return cost;
}

int GreedyGedUpperBound(const LabeledGraph& a, const LabeledGraph& b,
                        const LabelDictionary& dict,
                        std::vector<int>* mapping_out) {
  const int n = a.num_vertices();
  const int m = b.num_vertices();
  if (n == 0 || m == 0) {
    if (mapping_out != nullptr) mapping_out->assign(n, -1);
    return TrivialUpperBound(a, b);
  }

  // Assignment over a square matrix of size n + m: rows 0..n-1 are
  // a-vertices, rows n.. are "insert" placeholders; columns 0..m-1 are
  // b-vertices, columns m.. are "delete" placeholders.
  const int size = n + m;
  std::vector<std::vector<double>> cost(size, std::vector<double>(size, 0.0));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < m; ++v) {
      // Substitution estimate: label cost plus half the degree difference
      // (each unmatched incident edge will cost at least an op somewhere).
      cost[u][v] =
          SubstitutionCost(dict, a.vertex_label(u), b.vertex_label(v)) +
          0.5 * std::abs(a.degree(u) - b.degree(v));
    }
    for (int v = m; v < size; ++v) {
      cost[u][v] = 1.0 + a.degree(u);  // delete u and its edges
    }
  }
  for (int u = n; u < size; ++u) {
    for (int v = 0; v < m; ++v) {
      cost[u][v] = 1.0 + b.degree(v);  // insert v and its edges
    }
  }
  std::vector<int> assignment;
  matching::MinCostAssignment(cost, &assignment);
  std::vector<int> mapping(n, -1);
  for (int u = 0; u < n; ++u) {
    if (assignment[u] < m) mapping[u] = assignment[u];
  }
  int upper = MappingCost(a, b, mapping, dict);
  if (mapping_out != nullptr) *mapping_out = std::move(mapping);
  return upper;
}

GedResult ExactGed(const LabeledGraph& a, const LabeledGraph& b,
                   const LabelDictionary& dict, const GedOptions& options) {
  std::optional<GedResult> result =
      BoundedGed(a, b, TrivialUpperBound(a, b), dict, options);
  SIMJ_CHECK(result.has_value());
  return *std::move(result);
}

Status ValidateGedResult(const LabeledGraph& a, const LabeledGraph& b,
                         const GedResult& result,
                         const LabelDictionary& dict) {
  if (static_cast<int>(result.mapping.size()) != a.num_vertices()) {
    return InternalError("GED mapping size disagrees with |V(a)|");
  }
  std::vector<bool> used(b.num_vertices(), false);
  for (int u = 0; u < a.num_vertices(); ++u) {
    int v = result.mapping[u];
    if (v < -1 || v >= b.num_vertices()) {
      std::string message = "GED mapping sends vertex ";
      message += std::to_string(u);
      message += " to out-of-range target ";
      message += std::to_string(v);
      return InternalError(std::move(message));
    }
    if (v >= 0) {
      if (used[v]) {
        std::string message = "GED mapping is not injective: b-vertex ";
        message += std::to_string(v);
        message += " has two preimages";
        return InternalError(std::move(message));
      }
      used[v] = true;
    }
  }
  int witnessed = MappingCost(a, b, result.mapping, dict);
  if (witnessed != result.distance) {
    std::string message = "GED mapping witnesses cost ";
    message += std::to_string(witnessed);
    message += " but the solver reported distance ";
    message += std::to_string(result.distance);
    return InternalError(std::move(message));
  }
  int lower = CssLowerBound(a, b, dict);
  if (result.distance < lower) {
    std::string message = "reported GED ";
    message += std::to_string(result.distance);
    message += " is below the CSS lower bound ";
    message += std::to_string(lower);
    return InternalError(std::move(message));
  }
  int upper = GreedyGedUpperBound(a, b, dict);
  if (result.distance > upper) {
    std::string message = "reported GED ";
    message += std::to_string(result.distance);
    message += " exceeds the greedy upper bound ";
    message += std::to_string(upper);
    return InternalError(std::move(message));
  }
  return Status::Ok();
}

}  // namespace simj::ged
