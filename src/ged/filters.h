// Pruning filters compared in the paper's Fig. 15.
//
// A GedFilter produces a lower bound on ged(q, pw(g)) valid for every
// possible world of the uncertain graph g; the pair is pruned when the
// bound exceeds tau.
//
// The competitors (Path [31], SEGOS/star [22, 29], Pars [30]) were designed
// for deterministic labels. As in the paper's evaluation, we run them
// *structure-only* (the alternative — enumerating all possible worlds — is
// exponential), which keeps them valid for uncertain graphs but weakens
// their pruning power. The CSS filter (the paper's contribution) exploits
// labels and uncertainty together via the vertex-label bipartite matching.

#ifndef SIMJ_GED_FILTERS_H_
#define SIMJ_GED_FILTERS_H_

#include <memory>
#include <string>

#include "graph/label.h"
#include "graph/labeled_graph.h"
#include "graph/uncertain_graph.h"

namespace simj::ged {

class GedFilter {
 public:
  virtual ~GedFilter() = default;

  virtual std::string name() const = 0;

  // Lower bound on ged(q, pw(g)) over all possible worlds pw(g); the pair
  // is a candidate iff the bound is <= tau.
  [[nodiscard]] virtual int LowerBound(const graph::LabeledGraph& q,
                         const graph::UncertainGraph& g,
                         const graph::LabelDictionary& dict,
                         int tau) const = 0;
};

// The paper's CSS bound (Thm. 3).
[[nodiscard]] std::unique_ptr<GedFilter> MakeCssFilter();

// Structure-only path-count filter in the spirit of [31]: compares the
// number of length-1 and length-2 directed paths, normalized by how many
// paths one edit operation can affect.
[[nodiscard]] std::unique_ptr<GedFilter> MakePathFilter();

// Structure-only star filter in the spirit of SEGOS [22] / c-star [29]:
// minimum-cost assignment between degree-stars, normalized by
// max(4, max_degree + 1).
[[nodiscard]] std::unique_ptr<GedFilter> MakeStarFilter();

// Structure-only partition filter in the spirit of Pars [30]: q is split
// into tau+1 edge-disjoint parts; the bound is the number of parts that are
// not structurally subgraph-isomorphic to g.
[[nodiscard]] std::unique_ptr<GedFilter> MakeParsFilter();

// True iff `pattern` is structurally (labels ignored, non-induced)
// subgraph-isomorphic to `host`. Exposed for tests.
[[nodiscard]] bool StructurallySubgraphIsomorphic(const graph::LabeledGraph& pattern,
                                    const graph::LabeledGraph& host);

// Number of directed 2-edge paths u -> v -> w with u != w. Exposed for
// tests.
[[nodiscard]] int64_t CountTwoPaths(const graph::LabeledGraph& g);

}  // namespace simj::ged

#endif  // SIMJ_GED_FILTERS_H_
