#include "ged/lower_bounds.h"

#include <algorithm>
#include <cstdlib>

#include <vector>

#include "matching/bipartite.h"
#include "matching/hungarian.h"
#include "util/metrics.h"

namespace simj::ged {

namespace {

using graph::LabelCounts;
using graph::LabeledGraph;
using graph::LabelDictionary;
using graph::UncertainGraph;

// ceil(dif / 2): DelEdge is an integer and DelEdge >= dif/2 (Lemma 4), so
// rounding up keeps the bound valid and slightly tightens it.
int HalfRoundedUp(int dif) { return (dif + 1) / 2; }

// One orientation of Thm. 1 with `small` having at most as many vertices
// as `big`.
int CssOriented(const LabeledGraph& small, const LabeledGraph& big,
                const LabelDictionary& dict) {
  int lambda_v = MatchableLabelCount(small.VertexLabelCounts(),
                                     big.VertexLabelCounts(), dict);
  int lambda_e = MatchableLabelCount(small.EdgeLabelCounts(),
                                     big.EdgeLabelCounts(), dict);
  int dif = graph::DegreeDistanceFromSorted(small.SortedDegrees(),
                                            big.SortedDegrees());
  return std::max(0, big.num_vertices() + big.num_edges() - lambda_e +
                         HalfRoundedUp(dif) - lambda_v);
}

}  // namespace

int CountLowerBound(const LabeledGraph& a, const LabeledGraph& b) {
  return std::abs(a.num_vertices() - b.num_vertices()) +
         std::abs(a.num_edges() - b.num_edges());
}

int LabelMultisetLowerBound(const LabeledGraph& a, const LabeledGraph& b,
                            const LabelDictionary& dict) {
  int lambda_v =
      MatchableLabelCount(a.VertexLabelCounts(), b.VertexLabelCounts(), dict);
  int lambda_e =
      MatchableLabelCount(a.EdgeLabelCounts(), b.EdgeLabelCounts(), dict);
  return std::max(a.num_vertices(), b.num_vertices()) - lambda_v +
         std::max(a.num_edges(), b.num_edges()) - lambda_e;
}

namespace {

// Labeled star of a vertex: its label plus the multisets of incident edge
// labels and neighbor labels.
struct Star {
  graph::LabelId center = graph::kInvalidLabel;
  LabelCounts edge_labels;
  LabelCounts leaf_labels;
  int degree = 0;
};

std::vector<Star> BuildStars(const LabeledGraph& g,
                             const LabelDictionary& /*dict*/) {
  std::vector<Star> stars(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    stars[v].center = g.vertex_label(v);
    stars[v].degree = g.degree(v);
  }
  for (const graph::Edge& e : g.edges()) {
    ++stars[e.src].edge_labels[e.label];
    ++stars[e.src].leaf_labels[g.vertex_label(e.dst)];
    ++stars[e.dst].edge_labels[e.label];
    ++stars[e.dst].leaf_labels[g.vertex_label(e.src)];
  }
  return stars;
}

// Star edit distance lambda(s1, s2) in the spirit of [29]: center
// substitution + edge label multiset difference + leaf label multiset
// difference. (Our wildcard-aware matchable count can only lower the
// distance relative to the original definition, which keeps the normalized
// bound valid.)
int StarEditDistance(const Star& s1, const Star& s2,
                     const LabelDictionary& dict) {
  int cost = dict.Matches(s1.center, s2.center) ? 0 : 1;
  cost += std::max(s1.degree, s2.degree) -
          MatchableLabelCount(s1.edge_labels, s2.edge_labels, dict);
  cost += std::max(s1.degree, s2.degree) -
          MatchableLabelCount(s1.leaf_labels, s2.leaf_labels, dict);
  return cost;
}

}  // namespace

int CStarLowerBound(const LabeledGraph& a, const LabeledGraph& b,
                    const LabelDictionary& dict) {
  std::vector<Star> stars_a = BuildStars(a, dict);
  std::vector<Star> stars_b = BuildStars(b, dict);
  size_t n = std::max(stars_a.size(), stars_b.size());
  if (n == 0) return 0;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i < stars_a.size() && j < stars_b.size()) {
        cost[i][j] = StarEditDistance(stars_a[i], stars_b[j], dict);
      } else if (i < stars_a.size()) {
        cost[i][j] = 1.0 + 2.0 * stars_a[i].degree;
      } else if (j < stars_b.size()) {
        cost[i][j] = 1.0 + 2.0 * stars_b[j].degree;
      }
    }
  }
  double mu = matching::MinCostAssignment(cost);
  int max_degree = 0;
  for (const Star& s : stars_a) max_degree = std::max(max_degree, s.degree);
  for (const Star& s : stars_b) max_degree = std::max(max_degree, s.degree);
  int delta = std::max(4, max_degree + 1);
  return static_cast<int>(mu) / delta;
}

int CssLowerBound(const LabeledGraph& a, const LabeledGraph& b,
                  const LabelDictionary& dict) {
  if (a.num_vertices() < b.num_vertices()) return CssOriented(a, b, dict);
  if (b.num_vertices() < a.num_vertices()) return CssOriented(b, a, dict);
  // Tie: both orientations are valid; keep the tighter one.
  return std::max(CssOriented(a, b, dict), CssOriented(b, a, dict));
}

int MaxCommonVertexLabels(const LabeledGraph& q, const UncertainGraph& g,
                          const LabelDictionary& dict) {
  matching::BipartiteGraph bipartite(g.num_vertices(), q.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int u = 0; u < q.num_vertices(); ++u) {
      bool linkable = false;
      for (const graph::LabelAlternative& alt : g.alternatives(v)) {
        if (dict.Matches(alt.label, q.vertex_label(u))) {
          linkable = true;
          break;
        }
      }
      if (linkable) bipartite.AddEdge(v, u);
    }
  }
  return bipartite.MaxMatching();
}

int CssStructuralConstant(const LabeledGraph& q, const UncertainGraph& g,
                          const LabelDictionary& dict) {
  LabelCounts q_edges = q.EdgeLabelCounts();
  LabelCounts g_edges = g.EdgeLabelCounts();
  int lambda_e = MatchableLabelCount(q_edges, g_edges, dict);

  std::vector<int> q_degrees = q.SortedDegrees();
  std::vector<int> g_degrees = g.SortedDegrees();

  auto oriented = [&](const std::vector<int>& small_deg, int big_v,
                      int big_e) {
    const std::vector<int>& big_deg =
        (&small_deg == &q_degrees) ? g_degrees : q_degrees;
    int dif = graph::DegreeDistanceFromSorted(small_deg, big_deg);
    return big_v + big_e - lambda_e + HalfRoundedUp(dif);
  };

  if (q.num_vertices() < g.num_vertices()) {
    return oriented(q_degrees, g.num_vertices(), g.num_edges());
  }
  if (g.num_vertices() < q.num_vertices()) {
    return oriented(g_degrees, q.num_vertices(), q.num_edges());
  }
  return std::max(oriented(q_degrees, g.num_vertices(), g.num_edges()),
                  oriented(g_degrees, q.num_vertices(), q.num_edges()));
}

int CssLowerBoundUncertain(const LabeledGraph& q, const UncertainGraph& g,
                           const LabelDictionary& dict) {
  static metrics::Counter& calls = metrics::Registry::Global().GetCounter(
      "simj_bound_css_uncertain_total");
  static metrics::Histogram& seconds =
      metrics::Registry::Global().GetHistogram(
          "simj_bound_css_uncertain_seconds");
  calls.Increment();
  metrics::ScopedLatency latency(seconds);
  return std::max(0, CssStructuralConstant(q, g, dict) -
                         MaxCommonVertexLabels(q, g, dict));
}

}  // namespace simj::ged
