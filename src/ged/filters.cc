#include "ged/filters.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "ged/lower_bounds.h"
#include "matching/hungarian.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simj::ged {

namespace {

using graph::LabeledGraph;
using graph::LabelDictionary;
using graph::UncertainGraph;

class CssFilter : public GedFilter {
 public:
  std::string name() const override { return "CSS"; }

  int LowerBound(const LabeledGraph& q, const UncertainGraph& g,
                 const LabelDictionary& dict, int /*tau*/) const override {
    static metrics::Histogram& hist =
        metrics::Registry::Global().GetHistogram("simj_filter_css_seconds");
    metrics::ScopedLatency latency(hist);
    trace::ScopedSpan span("filter_css", "filter");
    return CssLowerBoundUncertain(q, g, dict);
  }
};

int MaxDegree(const LabeledGraph& g) {
  int max_degree = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  return max_degree;
}

// Structure-only path filter. One edge operation changes the edge count by
// at most 1 and the 2-path count by at most 2 * max_degree (an edit script
// can always be ordered deletions-first, so intermediate graphs stay inside
// one of the endpoints' degree envelopes).
class PathFilter : public GedFilter {
 public:
  std::string name() const override { return "Path"; }

  int LowerBound(const LabeledGraph& q, const UncertainGraph& g,
                 const LabelDictionary& /*dict*/, int /*tau*/) const override {
    static metrics::Histogram& hist =
        metrics::Registry::Global().GetHistogram("simj_filter_path_seconds");
    metrics::ScopedLatency latency(hist);
    trace::ScopedSpan span("filter_path", "filter");
    const LabeledGraph& h = g.structure();
    int64_t bound1 = std::abs(q.num_edges() - h.num_edges());
    int64_t diff2 = std::abs(CountTwoPaths(q) - CountTwoPaths(h));
    int per_op = 2 * std::max(1, std::max(MaxDegree(q), MaxDegree(h)));
    int64_t bound2 = (diff2 + per_op - 1) / per_op;
    return static_cast<int>(std::max(bound1, bound2));
  }
};

// Structure-only star filter: assignment between degree-stars, normalized
// as in c-star [29] by max(4, max_degree + 1). The structural star edit
// distance |d_i - d_j| underestimates the labeled one, so the bound stays
// valid.
class StarFilter : public GedFilter {
 public:
  std::string name() const override { return "SEGOS"; }

  int LowerBound(const LabeledGraph& q, const UncertainGraph& g,
                 const LabelDictionary& /*dict*/, int /*tau*/) const override {
    static metrics::Histogram& hist =
        metrics::Registry::Global().GetHistogram("simj_filter_segos_seconds");
    metrics::ScopedLatency latency(hist);
    trace::ScopedSpan span("filter_segos", "filter");
    const LabeledGraph& h = g.structure();
    std::vector<int> deg_a(q.num_vertices());
    for (int v = 0; v < q.num_vertices(); ++v) deg_a[v] = q.degree(v);
    std::vector<int> deg_b(h.num_vertices());
    for (int v = 0; v < h.num_vertices(); ++v) deg_b[v] = h.degree(v);
    // Pad with empty stars; mapping a star onto an empty star costs the
    // star's full size (center + spokes).
    size_t n = std::max(deg_a.size(), deg_b.size());
    if (n == 0) return 0;
    std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i < deg_a.size() && j < deg_b.size()) {
          cost[i][j] = std::abs(deg_a[i] - deg_b[j]);
        } else if (i < deg_a.size()) {
          cost[i][j] = 1.0 + deg_a[i];
        } else if (j < deg_b.size()) {
          cost[i][j] = 1.0 + deg_b[j];
        }
      }
    }
    double mu = matching::MinCostAssignment(cost);
    int delta = std::max(4, std::max(MaxDegree(q), MaxDegree(h)) + 1);
    return static_cast<int>(mu / delta);
  }
};

// Edge-disjoint BFS partitioning of q into `parts` connected(-ish) pieces.
std::vector<LabeledGraph> PartitionEdges(const LabeledGraph& q, int parts) {
  SIMJ_CHECK_GT(parts, 0);
  std::vector<LabeledGraph> out;
  int total = q.num_edges();
  if (total == 0) return out;
  int per_part = std::max(1, (total + parts - 1) / parts);
  // Walk edges in index order, grouping consecutive runs. Edges added by
  // generators are locally clustered, which keeps parts loosely connected;
  // connectivity is not required for validity.
  int e = 0;
  while (e < total) {
    int end = std::min(total, e + per_part);
    LabeledGraph part;
    std::vector<int> vertex_map(q.num_vertices(), -1);
    for (int i = e; i < end; ++i) {
      const graph::Edge& edge = q.edge(i);
      for (int endpoint : {edge.src, edge.dst}) {
        if (vertex_map[endpoint] == -1) {
          vertex_map[endpoint] = part.AddVertex(q.vertex_label(endpoint));
        }
      }
      part.AddEdge(vertex_map[edge.src], vertex_map[edge.dst], edge.label);
    }
    out.push_back(std::move(part));
    e = end;
  }
  return out;
}

class ParsFilter : public GedFilter {
 public:
  std::string name() const override { return "Pars"; }

  int LowerBound(const LabeledGraph& q, const UncertainGraph& g,
                 const LabelDictionary& /*dict*/, int tau) const override {
    static metrics::Histogram& hist =
        metrics::Registry::Global().GetHistogram("simj_filter_pars_seconds");
    metrics::ScopedLatency latency(hist);
    trace::ScopedSpan span("filter_pars", "filter");
    const LabeledGraph& h = g.structure();
    std::vector<LabeledGraph> parts = PartitionEdges(q, tau + 1);
    int mismatched = 0;
    for (const LabeledGraph& part : parts) {
      if (!StructurallySubgraphIsomorphic(part, h)) ++mismatched;
    }
    return mismatched;
  }
};

// Backtracking structural subgraph isomorphism; pattern graphs here are a
// handful of edges, so plain DFS with degree pruning is plenty.
bool ExtendMapping(const LabeledGraph& pattern, const LabeledGraph& host,
                   std::vector<int>& map, std::vector<bool>& used, int next) {
  if (next == pattern.num_vertices()) return true;
  for (int candidate = 0; candidate < host.num_vertices(); ++candidate) {
    if (used[candidate]) continue;
    if (host.degree(candidate) < pattern.degree(next)) continue;
    bool consistent = true;
    for (int prev = 0; prev < next && consistent; ++prev) {
      int need_out =
          static_cast<int>(pattern.EdgeLabelsBetween(next, prev).size());
      int need_in =
          static_cast<int>(pattern.EdgeLabelsBetween(prev, next).size());
      if (need_out >
              static_cast<int>(
                  host.EdgeLabelsBetween(candidate, map[prev]).size()) ||
          need_in > static_cast<int>(
                        host.EdgeLabelsBetween(map[prev], candidate).size())) {
        consistent = false;
      }
    }
    if (!consistent) continue;
    map[next] = candidate;
    used[candidate] = true;
    if (ExtendMapping(pattern, host, map, used, next + 1)) return true;
    used[candidate] = false;
    map[next] = -1;
  }
  return false;
}

}  // namespace

bool StructurallySubgraphIsomorphic(const LabeledGraph& pattern,
                                    const LabeledGraph& host) {
  if (pattern.num_vertices() > host.num_vertices()) return false;
  if (pattern.num_edges() > host.num_edges()) return false;
  std::vector<int> map(pattern.num_vertices(), -1);
  std::vector<bool> used(host.num_vertices(), false);
  return ExtendMapping(pattern, host, map, used, 0);
}

int64_t CountTwoPaths(const LabeledGraph& g) {
  int64_t total = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    for (int e_in : g.in_edges(v)) {
      for (int e_out : g.out_edges(v)) {
        if (g.edge(e_in).src != g.edge(e_out).dst) ++total;
      }
    }
  }
  return total;
}

std::unique_ptr<GedFilter> MakeCssFilter() {
  return std::make_unique<CssFilter>();
}
std::unique_ptr<GedFilter> MakePathFilter() {
  return std::make_unique<PathFilter>();
}
std::unique_ptr<GedFilter> MakeStarFilter() {
  return std::make_unique<StarFilter>();
}
std::unique_ptr<GedFilter> MakeParsFilter() {
  return std::make_unique<ParsFilter>();
}

}  // namespace simj::ged
