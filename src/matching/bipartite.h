// Maximum-cardinality bipartite matching (Hopcroft-Karp).
//
// Used to evaluate lambda_V(q, g) for uncertain graphs: the size of a
// maximum matching in the vertex-label bipartite graph (paper Def. 10),
// which upper-bounds the number of common vertex labels across all possible
// worlds.

#ifndef SIMJ_MATCHING_BIPARTITE_H_
#define SIMJ_MATCHING_BIPARTITE_H_

#include <vector>

namespace simj::matching {

// Bipartite graph with `num_left` and `num_right` vertices; edges are added
// explicitly. MaxMatching() returns the size of a maximum matching.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_left, int num_right);

  void AddEdge(int left, int right);

  int num_left() const { return static_cast<int>(adj_.size()); }
  int num_right() const { return num_right_; }

  // Size of a maximum-cardinality matching (Hopcroft-Karp, O(E sqrt(V))).
  int MaxMatching() const;

  // As MaxMatching(), and fills match_of_left[l] with the matched right
  // vertex of l or -1.
  int MaxMatching(std::vector<int>* match_of_left) const;

 private:
  std::vector<std::vector<int>> adj_;
  int num_right_;
};

}  // namespace simj::matching

#endif  // SIMJ_MATCHING_BIPARTITE_H_
