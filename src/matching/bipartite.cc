#include "matching/bipartite.h"

#include <functional>
#include <limits>
#include <queue>

#include "util/check.h"

namespace simj::matching {

namespace {
constexpr int kInfinity = std::numeric_limits<int>::max();
}  // namespace

BipartiteGraph::BipartiteGraph(int num_left, int num_right)
    : adj_(num_left), num_right_(num_right) {
  SIMJ_CHECK_GE(num_left, 0);
  SIMJ_CHECK_GE(num_right, 0);
}

void BipartiteGraph::AddEdge(int left, int right) {
  SIMJ_CHECK(left >= 0 && left < num_left());
  SIMJ_CHECK(right >= 0 && right < num_right_);
  adj_[left].push_back(right);
}

int BipartiteGraph::MaxMatching() const {
  std::vector<int> unused;
  return MaxMatching(&unused);
}

int BipartiteGraph::MaxMatching(std::vector<int>* match_of_left) const {
  const int n = num_left();
  const int m = num_right_;
  std::vector<int>& match_l = *match_of_left;
  match_l.assign(n, -1);
  std::vector<int> match_r(m, -1);
  std::vector<int> dist(n, 0);

  // Hopcroft-Karp: repeatedly find a maximal set of shortest augmenting
  // paths via BFS layering + DFS augmentation.
  auto bfs = [&]() -> bool {
    std::queue<int> queue;
    for (int l = 0; l < n; ++l) {
      if (match_l[l] == -1) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInfinity;
      }
    }
    bool found_free = false;
    while (!queue.empty()) {
      int l = queue.front();
      queue.pop();
      for (int r : adj_[l]) {
        int next = match_r[r];
        if (next == -1) {
          found_free = true;
        } else if (dist[next] == kInfinity) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found_free;
  };

  std::function<bool(int)> dfs = [&](int l) -> bool {
    for (int r : adj_[l]) {
      int next = match_r[r];
      if (next == -1 || (dist[next] == dist[l] + 1 && dfs(next))) {
        match_l[l] = r;
        match_r[r] = l;
        return true;
      }
    }
    dist[l] = kInfinity;
    return false;
  };

  int matching = 0;
  while (bfs()) {
    for (int l = 0; l < n; ++l) {
      if (match_l[l] == -1 && dfs(l)) ++matching;
    }
  }
  return matching;
}

}  // namespace simj::matching
