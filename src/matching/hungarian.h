// Minimum-cost assignment (Hungarian algorithm / Kuhn-Munkres).
//
// Used by the A* GED heuristic and by the star-based competitor filter:
// both need the cheapest one-to-one assignment between two sets of items
// under an arbitrary non-negative cost matrix.

#ifndef SIMJ_MATCHING_HUNGARIAN_H_
#define SIMJ_MATCHING_HUNGARIAN_H_

#include <vector>

namespace simj::matching {

// Solves min-cost assignment on an n x m cost matrix (rows assigned to
// distinct columns). Requires n <= m; pad the matrix with dummy columns
// beforehand if needed. Returns the optimal total cost and, if `assignment`
// is non-null, fills assignment[row] = column.
//
// Costs may be any finite doubles (negative allowed). O(n^2 m).
double MinCostAssignment(const std::vector<std::vector<double>>& cost,
                         std::vector<int>* assignment = nullptr);

}  // namespace simj::matching

#endif  // SIMJ_MATCHING_HUNGARIAN_H_
