#include "matching/hungarian.h"

#include <limits>

#include "util/check.h"

namespace simj::matching {

double MinCostAssignment(const std::vector<std::vector<double>>& cost,
                         std::vector<int>* assignment) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) {
    if (assignment != nullptr) assignment->clear();
    return 0.0;
  }
  const int m = static_cast<int>(cost[0].size());
  SIMJ_CHECK_LE(n, m);
  for (const auto& row : cost) {
    SIMJ_CHECK_EQ(static_cast<int>(row.size()), m);
  }

  // Classic O(n^2 m) potentials formulation (1-indexed internals).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0);      // p[j] = row matched to column j
  std::vector<int> way(m + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  if (assignment != nullptr) {
    assignment->assign(n, -1);
    for (int j = 1; j <= m; ++j) {
      if (p[j] > 0) (*assignment)[p[j] - 1] = j - 1;
    }
  }
  double total = 0.0;
  for (int j = 1; j <= m; ++j) {
    if (p[j] > 0) total += cost[p[j] - 1][j - 1];
  }
  return total;
}

}  // namespace simj::matching
